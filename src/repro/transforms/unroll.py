"""Loop unrolling.

Implements the paper's unrolling scheme (Section III-A.2, Figure 3): the
loop body — *including the header and its exit check* — is cloned ``u - 1``
times and the copies are chained:

    preheader -> H0 ... L0 -> H1 ... L1 -> ... -> L(u-1) -> H0

Each copy keeps its exit edges, so the transformation is semantics-
preserving for any trip count (the paper unrolls while-style, non-counted
loops the same way).  The cloned headers have a single predecessor — the
previous copy's latch — so their phis collapse to the previous copy's
values, which is what exposes cross-iteration redundancies to GVN/SCCP.

Full unrolling falls out for free: when the trip count is a compile-time
constant ``tc <= u``, SCCP proves the back edge dead (the chain's exit
conditions fold one after another) and SimplifyCFG deletes the loop —
reproducing the paper's bspline-vgh observation that unroll factors 4 and 8
generate identical code for a trip-count-4 loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.loops import Loop, LoopInfo
from ..analysis.tripcount import constant_trip_count
from ..ir.block import BasicBlock
from ..ir.clone import clone_blocks, map_value
from ..ir.function import Function
from ..ir.instructions import PhiInst
from ..ir.values import Value
from ..obs import session as obs
from .lcssa import form_lcssa


class UnrollError(Exception):
    """Raised when a loop cannot be unrolled (caller may skip the loop)."""


def can_unroll(loop: Loop) -> bool:
    """Structural preconditions for :func:`unroll_loop`."""
    return loop.single_latch() is not None


def unroll_loop(func: Function, loop: Loop, factor: int) -> List[BasicBlock]:
    """Unroll ``loop`` by ``factor``; returns all blocks of the widened loop.

    The returned list contains the original loop blocks plus every cloned
    block, i.e. the body of the new (wider) natural loop.
    """
    if factor < 2:
        return list(loop.blocks)
    latch = loop.single_latch()
    if latch is None:
        raise UnrollError(f"loop {loop.loop_id} has multiple latches")
    form_lcssa(func, loop)
    loop.ensure_preheader()

    header = loop.header
    original_blocks = list(loop.blocks)
    exit_blocks = loop.exit_blocks()
    region = list(original_blocks)

    # Incoming values of header phis along the back edge, per original phi.
    header_phis = header.phis()
    latch_values: Dict[int, Value] = {
        id(phi): phi.incoming_for(latch) for phi in header_phis}

    # Clone all copies first, from the *pristine* originals: rewiring the
    # chain as we go would corrupt later clones (each clone captures the
    # original latch's current back-edge target).
    copies: List[Tuple[List[BasicBlock], Dict[int, Value]]] = []
    for copy_index in range(1, factor):
        clones, vmap = clone_blocks(func, original_blocks,
                                    f"u{copy_index}", vmap=None)
        copies.append((clones, vmap))
        region.extend(clones)

    prev_latch = latch
    # The block the previous copy's back edge currently targets: the
    # original header for the original latch, the copy's own cloned header
    # for cloned latches (clone_blocks remaps back edges within the copy).
    prev_backedge_target = header
    prev_vmap: Optional[Dict[int, Value]] = None
    last_vmap: Optional[Dict[int, Value]] = None

    for clones, vmap in copies:
        new_header = vmap[id(header)]
        assert isinstance(new_header, BasicBlock)

        # Chain: previous copy's latch now branches to this copy's header.
        prev_term = prev_latch.terminator
        assert prev_term is not None
        prev_term.replace_successor(prev_backedge_target, new_header)
        prev_backedge_target = new_header

        # The cloned header has one predecessor (prev latch): each cloned
        # phi becomes the value the previous copy computed for it.
        for phi in header_phis:
            cloned_phi = vmap[id(phi)]
            assert isinstance(cloned_phi, PhiInst)
            incoming = latch_values[id(phi)]
            if prev_vmap is not None:
                incoming = map_value(prev_vmap, incoming)
            cloned_phi.replace_all_uses_with(incoming)
            cloned_phi.erase_from_parent()
            # Future copies (and the final back-edge fix-up) must see the
            # collapsed value, not the erased clone.
            vmap[id(phi)] = incoming

        # Exit blocks gain one predecessor per cloned exiting block.
        for exit_block in exit_blocks:
            for phi in exit_block.phis():
                for value, pred in list(phi.incoming()):
                    mapped_pred = vmap.get(id(pred))
                    if mapped_pred is not None:
                        phi.add_incoming(map_value(vmap, value), mapped_pred)  # type: ignore[arg-type]

        mapped_latch = vmap[id(latch)]
        assert isinstance(mapped_latch, BasicBlock)
        prev_latch = mapped_latch
        prev_vmap = vmap
        last_vmap = vmap

    # Close the chain: the last copy's latch carries the back edge.
    last_term = prev_latch.terminator
    assert last_term is not None
    if prev_latch is not latch:
        # The clone's back edge still targets its own cloned header.
        assert last_vmap is not None
        cloned_header = last_vmap[id(header)]
        assert isinstance(cloned_header, BasicBlock)
        last_term.replace_successor(cloned_header, header)
        # Original header phis: the back edge now comes from the last
        # cloned latch, carrying the last copy's values.
        for phi in header_phis:
            incoming = latch_values[id(phi)]
            for i, pred in enumerate(phi.incoming_blocks):
                if pred is latch:
                    phi.set_incoming_block(i, prev_latch)
                    phi.set_operand(i, map_value(last_vmap, incoming))
    return region


class BaselineUnroll:
    """The stock compiler's unroller, modelling LLVM -O3 defaults.

    Two behaviours, both central to the paper's pipeline-interaction
    findings:

    * **full unrolling** of counted loops whose constant trip count and
      unrolled size fit a budget — behind the `coordinates` observation
      (baseline fully unrolls; the u&u pass claiming the loop suppresses
      this, which *helps* when the unrolled body thrashes the icache);
    * **runtime unrolling** of small innermost loops by a modest factor —
      behind the `ccs`/`contract` observation ("applying u&u disables
      beneficial runtime unrolling for those loops, which LLVM otherwise
      applies"): a u&u-claimed loop loses this and may regress.

    Loops listed in ``func.attributes["uu_claimed_loops"]`` or annotated
    with an unroll pragma are skipped.
    """

    name = "baseline-unroll"

    def __init__(self, max_trip_count: int = 64,
                 size_budget: int = 4096,
                 runtime_size_limit: int = 40,
                 runtime_factor: int = 4) -> None:
        self.max_trip_count = max_trip_count
        self.size_budget = size_budget
        self.runtime_size_limit = runtime_size_limit
        self.runtime_factor = runtime_factor

    def run(self, func: Function) -> bool:
        from ..analysis.cost_model import loop_size

        changed = False
        # Re-discover loops after each transform: unrolling restructures.
        progress = True
        unrolled_headers = set()
        while progress:
            progress = False
            claimed = set(func.attributes.get("uu_claimed_loops", ()))
            pragmas = func.attributes.get("loop_pragmas", {})
            loop_info = LoopInfo.compute(func)
            for loop in loop_info.innermost_first():
                if id(loop.header) in unrolled_headers:
                    continue
                if loop.loop_id in claimed or loop.loop_id in pragmas:
                    continue
                if not can_unroll(loop):
                    continue
                size = loop_size(loop)
                factor = self._choose_factor(loop, size)
                if factor is None:
                    unrolled_headers.add(id(loop.header))
                    continue
                unroll_loop(func, loop, factor)
                if obs.active() is not None:
                    tc = constant_trip_count(loop)
                    obs.remark("applied", self.name, func.name,
                               f"unrolled by {factor}",
                               loop_id=loop.loop_id, factor=factor,
                               size=size,
                               unroll_kind="full" if tc is not None and
                               factor == tc + 1 else "runtime")
                unrolled_headers.add(id(loop.header))
                changed = True
                progress = True
                break
        return changed

    def _choose_factor(self, loop, size: int) -> Optional[int]:
        tc = constant_trip_count(loop)
        if tc is not None and 1 <= tc <= self.max_trip_count and \
                tc * size <= self.size_budget:
            # Full unroll: factor tc+1 lets SCCP prove the back edge dead
            # under the keep-exit-checks scheme.
            return tc + 1
        if loop.is_innermost and size <= self.runtime_size_limit and \
                self.runtime_factor >= 2:
            return self.runtime_factor
        return None


class UnrollPass:
    """Plain unrolling of one specific loop (the paper's *unroll* config)."""

    name = "unroll"

    def __init__(self, loop_id: str, factor: int) -> None:
        self.loop_id = loop_id
        self.factor = factor

    def run(self, func: Function) -> bool:
        loop_info = LoopInfo.compute(func)
        loop = loop_info.by_id(self.loop_id)
        if loop is None or not can_unroll(loop):
            obs.remark("missed", self.name, func.name,
                       "loop not found" if loop is None
                       else "no single latch", loop_id=self.loop_id)
            return False
        claimed = set(func.attributes.get("uu_claimed_loops", ()))
        claimed.add(self.loop_id)
        func.attributes["uu_claimed_loops"] = claimed
        unroll_loop(func, loop, self.factor)
        obs.remark("applied", self.name, func.name,
                   f"unrolled by {self.factor}", loop_id=self.loop_id,
                   factor=self.factor)
        return True
