"""Compile-time evaluation of instructions over constant operands.

Shared by SCCP, instcombine and the branch folder in SimplifyCFG.  Integer
semantics wrap to the operand width (matching the simulator); float
semantics follow IEEE doubles with binary32 rounding for ``f32``.  Every
case the SIMT interpreter can also reach follows the shared contract in
:mod:`repro.semantics` — folding must be invisible under differential
execution (see :mod:`repro.fuzz`).
"""

from __future__ import annotations

import math
from typing import Optional

from ..ir.constants import (Constant, ConstantFloat, ConstantInt, Undef,
                            bool_const, const)
from ..ir.instructions import (BinaryInst, CallInst, CastInst, FCmpInst,
                               ICmpInst, Instruction, SelectInst)
from ..ir.types import FloatType, IntType
from ..ir.values import Value
from ..semantics import (eval_intrinsic_const, fdiv_const, fptosi_const,
                         frem_const, int_to_float_const)


def fold_instruction(inst: Instruction) -> Optional[Constant]:
    """Evaluate ``inst`` if all relevant operands are constants."""
    if isinstance(inst, BinaryInst):
        if isinstance(inst.lhs, ConstantInt) and isinstance(inst.rhs, ConstantInt):
            return fold_int_binop(inst.opcode, inst.lhs, inst.rhs)
        if isinstance(inst.lhs, ConstantFloat) and isinstance(inst.rhs, ConstantFloat):
            return fold_float_binop(inst.opcode, inst.lhs, inst.rhs)
        return None
    if isinstance(inst, ICmpInst):
        if isinstance(inst.lhs, ConstantInt) and isinstance(inst.rhs, ConstantInt):
            return fold_icmp(inst.predicate, inst.lhs, inst.rhs)
        return None
    if isinstance(inst, FCmpInst):
        if isinstance(inst.lhs, ConstantFloat) and isinstance(inst.rhs, ConstantFloat):
            return fold_fcmp(inst.predicate, inst.lhs, inst.rhs)
        return None
    if isinstance(inst, SelectInst):
        cond = inst.condition
        if isinstance(cond, ConstantInt):
            arm = inst.true_value if cond.value else inst.false_value
            return arm if isinstance(arm, Constant) else None
        return None
    if isinstance(inst, CastInst):
        if isinstance(inst.value, (ConstantInt, ConstantFloat)):
            return fold_cast(inst.opcode, inst.value, inst.type)
        return None
    if isinstance(inst, CallInst):
        if inst.is_pure and all(isinstance(a, (ConstantInt, ConstantFloat))
                                for a in inst.operands):
            return fold_intrinsic(inst)
        return None
    return None


def fold_int_binop(opcode: str, lhs: ConstantInt, rhs: ConstantInt
                   ) -> Optional[ConstantInt]:
    type_ = lhs.type
    assert isinstance(type_, IntType)
    a, b = lhs.value, rhs.value
    au, bu = lhs.unsigned(), rhs.unsigned()
    if opcode == "add":
        return ConstantInt(type_, a + b)
    if opcode == "sub":
        return ConstantInt(type_, a - b)
    if opcode == "mul":
        return ConstantInt(type_, a * b)
    if opcode == "sdiv":
        if b == 0:
            return None
        return ConstantInt(type_, _trunc_div(a, b))
    if opcode == "udiv":
        if bu == 0:
            return None
        return ConstantInt(type_, au // bu)
    if opcode == "srem":
        if b == 0:
            return None
        return ConstantInt(type_, a - _trunc_div(a, b) * b)
    if opcode == "urem":
        if bu == 0:
            return None
        return ConstantInt(type_, au % bu)
    if opcode == "shl":
        if not 0 <= bu < type_.bits:
            return None
        return ConstantInt(type_, au << bu)
    if opcode == "lshr":
        if not 0 <= bu < type_.bits:
            return None
        return ConstantInt(type_, au >> bu)
    if opcode == "ashr":
        if not 0 <= bu < type_.bits:
            return None
        return ConstantInt(type_, a >> bu)
    if opcode == "and":
        return ConstantInt(type_, au & bu)
    if opcode == "or":
        return ConstantInt(type_, au | bu)
    if opcode == "xor":
        return ConstantInt(type_, au ^ bu)
    return None


def _trunc_div(a: int, b: int) -> int:
    """C-style truncating division (Python ``//`` floors)."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def fold_float_binop(opcode: str, lhs: ConstantFloat, rhs: ConstantFloat
                     ) -> Optional[ConstantFloat]:
    a, b = lhs.value, rhs.value
    try:
        if opcode == "fadd":
            r = a + b
        elif opcode == "fsub":
            r = a - b
        elif opcode == "fmul":
            r = a * b
        elif opcode == "fdiv":
            # IEEE division, zero divisors included: the sign of -0.0
            # selects the infinity's sign, 0/0 and NaN operands give NaN.
            r = fdiv_const(a, b)
        elif opcode == "frem":
            r = frem_const(a, b)
        else:
            return None
    except OverflowError:
        return None
    return ConstantFloat(lhs.type, r)  # type: ignore[arg-type]


def fold_icmp(predicate: str, lhs: ConstantInt, rhs: ConstantInt
              ) -> ConstantInt:
    a, b = lhs.value, rhs.value
    au, bu = lhs.unsigned(), rhs.unsigned()
    table = {
        "eq": a == b, "ne": a != b,
        "slt": a < b, "sle": a <= b, "sgt": a > b, "sge": a >= b,
        "ult": au < bu, "ule": au <= bu, "ugt": au > bu, "uge": au >= bu,
    }
    return bool_const(table[predicate])


def fold_fcmp(predicate: str, lhs: ConstantFloat, rhs: ConstantFloat
              ) -> ConstantInt:
    a, b = lhs.value, rhs.value
    unordered = math.isnan(a) or math.isnan(b)
    ordered_result = {
        "oeq": a == b, "one": a != b, "olt": a < b, "ole": a <= b,
        "ogt": a > b, "oge": a >= b,
    }
    if predicate in ordered_result:
        return bool_const(not unordered and ordered_result[predicate])
    base = predicate[1:]
    comp = {
        "eq": a == b, "ne": a != b, "lt": a < b, "le": a <= b,
        "gt": a > b, "ge": a >= b,
    }[base]
    return bool_const(unordered or comp)


def fold_cast(opcode: str, value: Constant, to_type) -> Optional[Constant]:
    if isinstance(value, ConstantInt):
        if opcode in ("trunc", "bitcast"):
            if isinstance(to_type, IntType):
                return ConstantInt(to_type, value.unsigned())
            return None
        if opcode == "zext" and isinstance(to_type, IntType):
            return ConstantInt(to_type, value.unsigned())
        if opcode == "sext" and isinstance(to_type, IntType):
            return ConstantInt(to_type, value.value)
        if opcode in ("sitofp", "uitofp") and isinstance(to_type, FloatType):
            return ConstantFloat(to_type, int_to_float_const(
                value.value, value.unsigned(), opcode == "sitofp", to_type))
        return None
    if isinstance(value, ConstantFloat):
        if opcode == "fptosi" and isinstance(to_type, IntType):
            # Saturating contract (repro.semantics): NaN -> 0, out-of-range
            # and ±inf clamp to the target's signed min/max.
            return ConstantInt(to_type, fptosi_const(value.value, to_type))
        if opcode in ("fpext", "fptrunc") and isinstance(to_type, FloatType):
            return ConstantFloat(to_type, value.value)
        return None
    return None


def fold_intrinsic(inst: CallInst) -> Optional[Constant]:
    """Fold a pure math intrinsic over constant operands.

    Evaluation goes through :func:`repro.semantics.eval_intrinsic_const`,
    i.e. the very numpy kernels (at the very storage dtypes) the SIMT
    interpreter executes — including its total-function clamps
    (``sqrt(x<0) = 0``, clamped ``exp``/``log``, ``pow(a,b) = |a|**b``) —
    so an f32 ``sin`` folds to the float32 routine's bits, not to a
    double-rounded libm value.
    """
    args = inst.operands
    if not args:
        return None  # SIMT geometry (tid.x & co) is pure but lane-varying.
    if not all(isinstance(a, (ConstantInt, ConstantFloat)) for a in args):
        return None
    out = eval_intrinsic_const(
        inst.intrinsic.name,
        [a.value for a in args],  # type: ignore[union-attr]
        [a.type for a in args])
    if out is None:
        return None
    if isinstance(inst.type, FloatType):
        return ConstantFloat(inst.type, float(out))
    if isinstance(inst.type, IntType):
        return ConstantInt(inst.type, int(out))
    return None
