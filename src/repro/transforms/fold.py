"""Compile-time evaluation of instructions over constant operands.

Shared by SCCP, instcombine and the branch folder in SimplifyCFG.  Integer
semantics wrap to the operand width (matching the simulator); float
semantics follow Python/IEEE doubles with binary32 rounding for ``f32``.
"""

from __future__ import annotations

import math
from typing import Optional

from ..ir.constants import (Constant, ConstantFloat, ConstantInt, Undef,
                            bool_const, const)
from ..ir.instructions import (BinaryInst, CallInst, CastInst, FCmpInst,
                               ICmpInst, Instruction, SelectInst)
from ..ir.types import FloatType, IntType
from ..ir.values import Value


def fold_instruction(inst: Instruction) -> Optional[Constant]:
    """Evaluate ``inst`` if all relevant operands are constants."""
    if isinstance(inst, BinaryInst):
        if isinstance(inst.lhs, ConstantInt) and isinstance(inst.rhs, ConstantInt):
            return fold_int_binop(inst.opcode, inst.lhs, inst.rhs)
        if isinstance(inst.lhs, ConstantFloat) and isinstance(inst.rhs, ConstantFloat):
            return fold_float_binop(inst.opcode, inst.lhs, inst.rhs)
        return None
    if isinstance(inst, ICmpInst):
        if isinstance(inst.lhs, ConstantInt) and isinstance(inst.rhs, ConstantInt):
            return fold_icmp(inst.predicate, inst.lhs, inst.rhs)
        return None
    if isinstance(inst, FCmpInst):
        if isinstance(inst.lhs, ConstantFloat) and isinstance(inst.rhs, ConstantFloat):
            return fold_fcmp(inst.predicate, inst.lhs, inst.rhs)
        return None
    if isinstance(inst, SelectInst):
        cond = inst.condition
        if isinstance(cond, ConstantInt):
            arm = inst.true_value if cond.value else inst.false_value
            return arm if isinstance(arm, Constant) else None
        return None
    if isinstance(inst, CastInst):
        if isinstance(inst.value, (ConstantInt, ConstantFloat)):
            return fold_cast(inst.opcode, inst.value, inst.type)
        return None
    if isinstance(inst, CallInst):
        if inst.is_pure and all(isinstance(a, (ConstantInt, ConstantFloat))
                                for a in inst.operands):
            return fold_intrinsic(inst)
        return None
    return None


def fold_int_binop(opcode: str, lhs: ConstantInt, rhs: ConstantInt
                   ) -> Optional[ConstantInt]:
    type_ = lhs.type
    assert isinstance(type_, IntType)
    a, b = lhs.value, rhs.value
    au, bu = lhs.unsigned(), rhs.unsigned()
    if opcode == "add":
        return ConstantInt(type_, a + b)
    if opcode == "sub":
        return ConstantInt(type_, a - b)
    if opcode == "mul":
        return ConstantInt(type_, a * b)
    if opcode == "sdiv":
        if b == 0:
            return None
        return ConstantInt(type_, _trunc_div(a, b))
    if opcode == "udiv":
        if bu == 0:
            return None
        return ConstantInt(type_, au // bu)
    if opcode == "srem":
        if b == 0:
            return None
        return ConstantInt(type_, a - _trunc_div(a, b) * b)
    if opcode == "urem":
        if bu == 0:
            return None
        return ConstantInt(type_, au % bu)
    if opcode == "shl":
        if not 0 <= bu < type_.bits:
            return None
        return ConstantInt(type_, au << bu)
    if opcode == "lshr":
        if not 0 <= bu < type_.bits:
            return None
        return ConstantInt(type_, au >> bu)
    if opcode == "ashr":
        if not 0 <= bu < type_.bits:
            return None
        return ConstantInt(type_, a >> bu)
    if opcode == "and":
        return ConstantInt(type_, au & bu)
    if opcode == "or":
        return ConstantInt(type_, au | bu)
    if opcode == "xor":
        return ConstantInt(type_, au ^ bu)
    return None


def _trunc_div(a: int, b: int) -> int:
    """C-style truncating division (Python ``//`` floors)."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def fold_float_binop(opcode: str, lhs: ConstantFloat, rhs: ConstantFloat
                     ) -> Optional[ConstantFloat]:
    a, b = lhs.value, rhs.value
    try:
        if opcode == "fadd":
            r = a + b
        elif opcode == "fsub":
            r = a - b
        elif opcode == "fmul":
            r = a * b
        elif opcode == "fdiv":
            r = math.inf if (b == 0.0 and a > 0) else (
                -math.inf if (b == 0.0 and a < 0) else (
                    math.nan if (b == 0.0) else a / b))
        elif opcode == "frem":
            r = math.fmod(a, b) if b != 0.0 else math.nan
        else:
            return None
    except OverflowError:
        return None
    return ConstantFloat(lhs.type, r)  # type: ignore[arg-type]


def fold_icmp(predicate: str, lhs: ConstantInt, rhs: ConstantInt
              ) -> ConstantInt:
    a, b = lhs.value, rhs.value
    au, bu = lhs.unsigned(), rhs.unsigned()
    table = {
        "eq": a == b, "ne": a != b,
        "slt": a < b, "sle": a <= b, "sgt": a > b, "sge": a >= b,
        "ult": au < bu, "ule": au <= bu, "ugt": au > bu, "uge": au >= bu,
    }
    return bool_const(table[predicate])


def fold_fcmp(predicate: str, lhs: ConstantFloat, rhs: ConstantFloat
              ) -> ConstantInt:
    a, b = lhs.value, rhs.value
    unordered = math.isnan(a) or math.isnan(b)
    ordered_result = {
        "oeq": a == b, "one": a != b, "olt": a < b, "ole": a <= b,
        "ogt": a > b, "oge": a >= b,
    }
    if predicate in ordered_result:
        return bool_const(not unordered and ordered_result[predicate])
    base = predicate[1:]
    comp = {
        "eq": a == b, "ne": a != b, "lt": a < b, "le": a <= b,
        "gt": a > b, "ge": a >= b,
    }[base]
    return bool_const(unordered or comp)


def fold_cast(opcode: str, value: Constant, to_type) -> Optional[Constant]:
    if isinstance(value, ConstantInt):
        if opcode in ("trunc", "bitcast"):
            if isinstance(to_type, IntType):
                return ConstantInt(to_type, value.unsigned())
            return None
        if opcode == "zext" and isinstance(to_type, IntType):
            return ConstantInt(to_type, value.unsigned())
        if opcode == "sext" and isinstance(to_type, IntType):
            return ConstantInt(to_type, value.value)
        if opcode in ("sitofp",) and isinstance(to_type, FloatType):
            return ConstantFloat(to_type, float(value.value))
        if opcode in ("uitofp",) and isinstance(to_type, FloatType):
            return ConstantFloat(to_type, float(value.unsigned()))
        return None
    if isinstance(value, ConstantFloat):
        if opcode == "fptosi" and isinstance(to_type, IntType):
            if math.isnan(value.value) or math.isinf(value.value):
                return None
            return ConstantInt(to_type, int(value.value))
        if opcode in ("fpext", "fptrunc") and isinstance(to_type, FloatType):
            return ConstantFloat(to_type, value.value)
        return None
    return None


def fold_intrinsic(inst: CallInst) -> Optional[Constant]:
    name = inst.intrinsic.name
    args = inst.operands
    unary = {
        "sqrt": math.sqrt, "fabs": abs, "exp": math.exp, "log": math.log,
        "sin": math.sin, "cos": math.cos, "atan": math.atan,
        "floor": math.floor,
    }
    try:
        if name in unary and len(args) == 1 and isinstance(args[0], ConstantFloat):
            return ConstantFloat(inst.type, unary[name](args[0].value))  # type: ignore[arg-type]
        if name == "pow" and len(args) == 2 and \
                all(isinstance(a, ConstantFloat) for a in args):
            return ConstantFloat(inst.type, args[0].value ** args[1].value)  # type: ignore[attr-defined,arg-type]
        if name in ("min", "max") and len(args) == 2 and \
                all(isinstance(a, ConstantInt) for a in args):
            fn = min if name == "min" else max
            return ConstantInt(inst.type, fn(args[0].value, args[1].value))  # type: ignore[attr-defined,arg-type]
        if name in ("fmin", "fmax") and len(args) == 2 and \
                all(isinstance(a, ConstantFloat) for a in args):
            fn = min if name == "fmin" else max
            return ConstantFloat(inst.type, fn(args[0].value, args[1].value))  # type: ignore[attr-defined,arg-type]
    except (ValueError, OverflowError):
        return None
    return None
