"""If-conversion (predication): folds small diamonds/triangles into selects.

This models the baseline compiler behaviour the paper contrasts with: at
-O3, LLVM/NVPTX turn small branchy regions into predicated ``selp``
instructions (XSBench Listing 4, `complex` Section V).  After unmerging,
the merge block is duplicated away, the diamond shape no longer exists, and
this pass structurally cannot fire — u&u "replaces predicated instructions
by possibly divergent branches" exactly as the paper describes.

Speculation safety: only pure, non-trapping, non-memory instructions are
hoisted, and only while the summed cost stays under ``threshold``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..analysis.cfg_utils import predecessor_map
from ..ir.block import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import (BranchInst, CondBranchInst, Instruction,
                               LoadInst, PhiInst, SelectInst, StoreInst)
from ..ir.values import Value


class Predication:
    """Speculates small conditional blocks and merges with selects."""

    name = "predication"

    def __init__(self, threshold: int = 16) -> None:
        self.threshold = threshold

    def run(self, func: Function) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            preds = predecessor_map(func)
            for block in list(func.blocks):
                term = block.terminator
                if not isinstance(term, CondBranchInst):
                    continue
                if term.true_target is term.false_target:
                    continue
                if self._try_diamond(func, block, term, preds) or \
                        self._try_triangle(func, block, term, preds):
                    progress = True
                    changed = True
                    break  # CFG changed; recompute predecessors.
        return changed

    # -- shapes -----------------------------------------------------------
    def _try_diamond(self, func: Function, block: BasicBlock,
                     term: CondBranchInst, preds) -> bool:
        t_blk, f_blk = term.true_target, term.false_target
        if not (self._is_speculatable_side(t_blk, block, preds) and
                self._is_speculatable_side(f_blk, block, preds)):
            return False
        t_term = t_blk.terminator
        f_term = f_blk.terminator
        assert isinstance(t_term, BranchInst) and isinstance(f_term, BranchInst)
        merge = t_term.target
        if f_term.target is not merge or merge is block:
            return False
        cost = self._side_cost(t_blk) + self._side_cost(f_blk)
        if cost > self.threshold:
            return False

        self._hoist(t_blk, block)
        self._hoist(f_blk, block)
        builder = IRBuilder(block)
        for phi in merge.phis():
            v_t = phi.incoming_for(t_blk)
            v_f = phi.incoming_for(f_blk)
            if v_t is v_f:
                merged: Value = v_t
            else:
                sel = SelectInst(term.condition, v_t, v_f)
                sel.name = func.unique_name("sel")
                block.insert_before_terminator(sel)
                merged = sel
            phi.remove_incoming(t_blk)
            phi.remove_incoming(f_blk)
            phi.add_incoming(merged, block)
        term.erase_from_parent()
        block.append(BranchInst(merge))
        self._erase_block(func, t_blk)
        self._erase_block(func, f_blk)
        return True

    def _try_triangle(self, func: Function, block: BasicBlock,
                      term: CondBranchInst, preds) -> bool:
        for side, other, side_is_true in (
                (term.true_target, term.false_target, True),
                (term.false_target, term.true_target, False)):
            if not self._is_speculatable_side(side, block, preds):
                continue
            s_term = side.terminator
            assert isinstance(s_term, BranchInst)
            merge = s_term.target
            if merge is not other or merge is block:
                continue
            if self._side_cost(side) > self.threshold:
                continue

            self._hoist(side, block)
            for phi in merge.phis():
                v_side = phi.incoming_for(side)
                v_block = phi.incoming_for(block)
                if v_side is v_block:
                    merged: Value = v_block
                else:
                    if side_is_true:
                        sel = SelectInst(term.condition, v_side, v_block)
                    else:
                        sel = SelectInst(term.condition, v_block, v_side)
                    sel.name = func.unique_name("sel")
                    block.insert_before_terminator(sel)
                    merged = sel
                phi.remove_incoming(side)
                for i, inc in enumerate(phi.incoming_blocks):
                    if inc is block:
                        phi.set_operand(i, merged)
            term.erase_from_parent()
            block.append(BranchInst(merge))
            self._erase_block(func, side)
            return True
        return False

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _is_speculatable_side(side: BasicBlock, block: BasicBlock,
                              preds) -> bool:
        if side.parent is None or side is block:
            return False
        side_preds = preds.get(side, [])
        if len(side_preds) != 1 or side_preds[0] is not block:
            return False
        if not isinstance(side.terminator, BranchInst):
            return False
        for inst in side.instructions[:-1]:
            if isinstance(inst, PhiInst):
                return False
            if not inst.is_pure or inst.info.may_trap:
                return False
            if isinstance(inst, (LoadInst, StoreInst)):
                return False
        return True

    @staticmethod
    def _side_cost(side: BasicBlock) -> int:
        return sum(inst.cost for inst in side.instructions[:-1])

    @staticmethod
    def _hoist(side: BasicBlock, block: BasicBlock) -> None:
        for inst in list(side.instructions[:-1]):
            side.remove_instruction(inst)
            block.insert_before_terminator(inst)

    @staticmethod
    def _erase_block(func: Function, block: BasicBlock) -> None:
        term = block.terminator
        assert term is not None and not term.operands
        term.erase_from_parent()
        assert not block.instructions, "side block should be empty after hoist"
        func.remove_block(block)


def run_predication(func: Function, threshold: int = 16) -> bool:
    """Convenience wrapper."""
    return Predication(threshold).run(func)
