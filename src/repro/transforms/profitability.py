"""Unmerge profitability analysis — the paper's partial-unmerging extension.

The paper proposes (Sections IV and VI) "selectively unmerging only those
parts of the loop that enable subsequent optimizations" to keep code size,
compile time and warp inefficiency under control.  This module implements
the static profitability test that drives that mode:

a merge block ``M`` is *profitable to unmerge* when duplicating its tail can
actually feed the cleanup passes, i.e. when at least one of the provenance
channels the duplication would open is in use:

1. **Re-evaluated comparison**: a comparison computed upstream of ``M``
   (inside the loop) is recomputed, with identical operands, in ``M``'s
   tail — after duplication the branch fact folds the re-check (the
   bezier-surface ``kn > 1`` pattern);
2. **Phi-fed control**: a phi of ``M`` (transitively) feeds a comparison,
   select, or branch condition in the tail — collapsing the phi gives each
   path a concrete value to fold against (the XSBench ``upperLimit``/
   ``lowerLimit`` pattern);
3. **Phi-fed address**: a phi of ``M`` feeds a load/store address in the
   tail — collapsing enables path-local redundant-load elimination (the
   rainflow ``y[j]`` pattern).

The test is deliberately conservative in the other direction: tails with
none of these channels (pure accumulation chains, as in contract/ccs) are
classified unprofitable, which is exactly where the paper observed u&u to
only add cost.
"""

from __future__ import annotations

from typing import List, Set

from ..ir.block import BasicBlock
from ..ir.instructions import (CondBranchInst, FCmpInst, GEPInst, ICmpInst,
                               Instruction, LoadInst, PhiInst, SelectInst,
                               StoreInst)
from ..ir.values import Value


def merge_is_profitable(loop_blocks: List[BasicBlock], merge: BasicBlock,
                        tail: List[BasicBlock]) -> bool:
    """Decide whether tail-duplicating ``merge`` can enable optimizations."""
    tail_ids = {id(b) for b in tail}
    upstream = [b for b in loop_blocks if id(b) not in tail_ids]

    if _reevaluated_comparison(upstream, tail):
        return True
    if _phi_feeds_interesting_use(merge, tail_ids):
        return True
    return False


def _comparison_key(inst: Instruction):
    if isinstance(inst, (ICmpInst, FCmpInst)):
        return (inst.opcode, inst.predicate,
                id(inst.operands[0]), id(inst.operands[1]))
    return None


def _reevaluated_comparison(upstream: List[BasicBlock],
                            tail: List[BasicBlock]) -> bool:
    upstream_keys: Set = set()
    for block in upstream:
        for inst in block.instructions:
            key = _comparison_key(inst)
            if key is not None:
                upstream_keys.add(key)
    if not upstream_keys:
        return False
    for block in tail:
        for inst in block.instructions:
            key = _comparison_key(inst)
            if key is not None and key in upstream_keys:
                return True
    return False


def _phi_feeds_interesting_use(merge: BasicBlock,
                               tail_ids: Set[int]) -> bool:
    """Transitive forward slice from the merge's phis, within the tail."""
    frontier: List[Value] = list(merge.phis())
    seen: Set[int] = {id(v) for v in frontier}
    budget = 256  # The slice is small; bound it defensively.
    while frontier and budget > 0:
        value = frontier.pop()
        for user in value.users():
            if not isinstance(user, Instruction) or user.parent is None:
                continue
            if id(user.parent) not in tail_ids:
                continue
            if isinstance(user, (ICmpInst, FCmpInst, SelectInst,
                                 CondBranchInst)):
                return True
            if isinstance(user, (LoadInst, StoreInst, GEPInst)):
                return True
            if id(user) not in seen:
                seen.add(id(user))
                frontier.append(user)
                budget -= 1
    return False
