"""Compiler transformations: u&u and the -O3-like cleanup battery."""

from .dce import DeadCodeElimination, run_dce
from .gvn import GlobalValueNumbering, run_gvn
from .heuristic import (HeuristicParams, HeuristicUU, LoopDecision,
                        choose_factor, select_loops)
from .instcombine import InstCombine, run_instcombine, simplify_instruction
from .lcssa import form_lcssa
from .licm import LoopInvariantCodeMotion, run_licm
from .load_elim import LoadElimination, run_load_elim
from .pass_manager import (CompileTimeout, FixpointPassManager,
                           PassManager, PassStatistics)
from .pipeline import (CONFIGS, CompileResult, build_pipeline, compile_module)
from .predication import Predication, run_predication
from .profitability import merge_is_profitable
from .sccp import SparseConditionalConstantPropagation, run_sccp
from .simplifycfg import SimplifyCFG, run_simplifycfg
from .tuned import TunedUU
from .unmerge import (UnmergeBudgetExceeded, UnmergePass, unmerge_loop)
from .unroll import (BaselineUnroll, UnrollError, UnrollPass, can_unroll,
                     unroll_loop)
from .uu import UnrollAndUnmerge, apply_uu, uu_applicable

__all__ = [
    "PassManager", "FixpointPassManager", "PassStatistics",
    "CompileTimeout",
    "DeadCodeElimination", "run_dce",
    "SimplifyCFG", "run_simplifycfg",
    "SparseConditionalConstantPropagation", "run_sccp",
    "InstCombine", "run_instcombine", "simplify_instruction",
    "GlobalValueNumbering", "run_gvn",
    "LoadElimination", "run_load_elim",
    "LoopInvariantCodeMotion", "run_licm",
    "Predication", "run_predication",
    "merge_is_profitable",
    "form_lcssa",
    "unroll_loop", "can_unroll", "UnrollError", "UnrollPass", "BaselineUnroll",
    "unmerge_loop", "UnmergePass", "UnmergeBudgetExceeded",
    "UnrollAndUnmerge", "apply_uu", "uu_applicable",
    "HeuristicParams", "HeuristicUU", "LoopDecision", "choose_factor",
    "select_loops", "TunedUU",
    "CONFIGS", "CompileResult", "build_pipeline", "compile_module",
]
