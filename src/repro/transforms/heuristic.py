"""The paper's u&u selection heuristic (Section III-C).

For each loop the heuristic estimates the unmerged-unrolled size
``f(p, s, u) = sum_{i=0}^{u-1} p^i * s`` from the number of body paths ``p``
(path analysis) and the cost-model size ``s``.  A loop is transformed if
some factor ``u' >= 2`` keeps ``f(p, s, u') < c``; the largest such
``u' <= u_max`` is chosen (paper evaluation: ``c = 1024``, ``u_max = 8``).

Nesting rule: innermost loops are tried first, and an outer loop is only
transformed when none of its inner loops was.  Convergent loops and loops
with explicit unroll pragmas are never touched.  As an optional extension
(the paper's Section V future-work sketch for `complex`), the heuristic can
also skip loops whose in-body branches are divergent (tid-tainted).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.cost_model import loop_size
from ..analysis.divergence import DivergenceInfo, loop_has_divergent_branch
from ..analysis.loops import Loop, LoopInfo
from ..analysis.paths import count_paths, estimate_unmerged_size
from ..ir.function import Function
from ..obs import session as obs
from ..obs.remarks import heuristic_remarks
from .uu import apply_uu, uu_applicable


@dataclass
class HeuristicParams:
    """Tunables of the selection heuristic."""

    c: int = 1024       # Upper bound on the estimated post-u&u loop size.
    u_max: int = 8      # Maximum unroll factor considered.
    avoid_divergent: bool = False  # Optional tid-taint filter (extension).
    divergent_args: Tuple[str, ...] = ()  # Arguments known thread-dependent.


@dataclass
class LoopDecision:
    """Why a loop was or was not selected, for reporting and tests."""

    loop_id: str
    paths: int
    size: int
    factor: Optional[int]
    reason: str
    #: Whether the selected transform actually mutated the IR: None for
    #: unselected loops, False when the loop's header could no longer be
    #: re-found after an earlier ``apply_uu`` relayout (or the transform
    #: declined).  ``repro run-heuristic --report`` surfaces skips.
    applied: Optional[bool] = None


def choose_factor(paths: int, size: int, params: HeuristicParams
                  ) -> Optional[int]:
    """Largest ``2 <= u <= u_max`` with ``f(p, s, u) < c``, or None."""
    best: Optional[int] = None
    for factor in range(2, params.u_max + 1):
        if estimate_unmerged_size(paths, size, factor) < params.c:
            best = factor
        else:
            break  # f is monotone in u.
    return best


def select_loops(func: Function, loop_info: LoopInfo,
                 params: HeuristicParams) -> List[LoopDecision]:
    """Decide, per loop, whether and how to u&u (no IR mutation)."""
    decisions: List[LoopDecision] = []
    selected_loops: Set[int] = set()
    divergence: Optional[DivergenceInfo] = None
    if params.avoid_divergent:
        divergence = DivergenceInfo.compute(
            func, set(params.divergent_args))

    for loop in loop_info.innermost_first():
        paths = count_paths(loop, loop_info)
        size = loop_size(loop)

        if _any_descendant_selected(loop, selected_loops):
            decisions.append(LoopDecision(
                loop.loop_id, paths, size, None, "inner loop already selected"))
            continue
        if not uu_applicable(func, loop):
            decisions.append(LoopDecision(
                loop.loop_id, paths, size, None, "convergent or pragma"))
            continue
        if divergence is not None and \
                loop_has_divergent_branch(loop, divergence):
            decisions.append(LoopDecision(
                loop.loop_id, paths, size, None, "divergent branch"))
            continue
        factor = choose_factor(paths, size, params)
        if factor is None:
            decisions.append(LoopDecision(
                loop.loop_id, paths, size, None,
                f"f(p={paths}, s={size}, 2) >= c={params.c}"))
            continue
        selected_loops.add(id(loop))
        decisions.append(LoopDecision(
            loop.loop_id, paths, size, factor, "selected"))
    return decisions


def _any_descendant_selected(loop: Loop, selected: Set[int]) -> bool:
    stack = list(loop.children)
    while stack:
        child = stack.pop()
        if id(child) in selected:
            return True
        stack.extend(child.children)
    return False


class HeuristicUU:
    """Whole-function heuristic u&u pass (the paper's *u&u heuristic*)."""

    name = "uu-heuristic"

    def __init__(self, params: Optional[HeuristicParams] = None,
                 max_instructions: int = 200_000) -> None:
        self.params = params or HeuristicParams()
        self.max_instructions = max_instructions
        self.decisions: List[LoopDecision] = []

    def run(self, func: Function) -> bool:
        loop_info = LoopInfo.compute(func)
        decisions = select_loops(func, loop_info, self.params)
        self.decisions.extend(decisions)
        # Applying u&u to one loop relayouts the function, so re-find each
        # selected loop by its (stable) header object.
        header_by_id = {l.loop_id: l.header for l in loop_info.loops}
        changed = False
        for decision in decisions:
            if decision.factor is None:
                continue
            header = header_by_id[decision.loop_id]
            fresh_info = LoopInfo.compute(func)
            target = None
            for loop in fresh_info.loops:
                if loop.header is header:
                    target = loop
                    break
            if target is None:
                # The decision log must not claim success: record the skip
                # instead of silently continuing.
                decision.applied = False
                continue
            did_apply = apply_uu(func, target, decision.factor,
                                 max_instructions=self.max_instructions)
            decision.applied = did_apply
            changed |= did_apply
        if obs.active() is not None:
            # The remark stream and ``run-heuristic --report`` both render
            # these same LoopDecision rows via heuristic_remarks(), so the
            # two views cannot drift apart.
            for remark in heuristic_remarks(decisions, function=func.name):
                obs.emit(remark)
        return changed
