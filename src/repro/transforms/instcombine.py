"""Instruction combining (peepholes).

Local algebraic simplifications in the spirit of LLVM's InstCombine.  The
pattern the paper's XSBench analysis depends on is re-association through a
prior add: once u&u makes ``upperLimit = mid = lowerLimit + length/2``
explicit on the taken path, ``upperLimit - lowerLimit`` matches
``(x + y) - x -> y`` and the subtraction disappears (Section V, Listing 5).
"""

from __future__ import annotations

from typing import Optional

from ..ir.constants import Constant, ConstantFloat, ConstantInt, bool_const
from ..ir.function import Function
from ..ir.instructions import (BinaryInst, CastInst, FCmpInst, ICmpInst,
                               Instruction, PhiInst, SelectInst)
from ..ir.values import Value
from ..obs import session as obs
from .fold import fold_instruction


class InstCombine:
    """Iterates peephole rewrites until none applies."""

    name = "instcombine"

    def run(self, func: Function) -> bool:
        combined = 0
        progress = True
        while progress:
            progress = False
            for block in func.blocks:
                for inst in list(block.instructions):
                    if inst.parent is None:
                        continue
                    replacement = simplify_instruction(inst)
                    if replacement is not None and replacement is not inst:
                        inst.replace_all_uses_with(replacement)
                        inst.erase_from_parent()
                        progress = True
                        combined += 1
        if combined and obs.active() is not None:
            obs.remark("analysis", self.name, func.name,
                       "combined instructions", combined=combined)
        return combined > 0


def simplify_instruction(inst: Instruction) -> Optional[Value]:
    """Return a simpler equivalent value for ``inst``, or None."""
    folded = fold_instruction(inst)
    if folded is not None:
        return folded
    if isinstance(inst, BinaryInst):
        return _simplify_binary(inst)
    if isinstance(inst, ICmpInst):
        return _simplify_icmp(inst)
    if isinstance(inst, SelectInst):
        return _simplify_select(inst)
    return None


# ---------------------------------------------------------------------------
# Binary ops
# ---------------------------------------------------------------------------

def _simplify_binary(inst: BinaryInst) -> Optional[Value]:
    op = inst.opcode
    lhs, rhs = inst.lhs, inst.rhs

    # Canonicalise: constant to the right for commutative ops.
    if inst.info.commutative and isinstance(lhs, Constant) and \
            not isinstance(rhs, Constant):
        lhs, rhs = rhs, lhs

    if op == "add":
        if _is_int_zero(rhs):
            return lhs
        # (x - y) + y -> x
        if isinstance(lhs, BinaryInst) and lhs.opcode == "sub" and lhs.rhs is rhs:
            return lhs.lhs
        if isinstance(rhs, BinaryInst) and rhs.opcode == "sub" and rhs.rhs is lhs:
            return rhs.lhs
    elif op == "sub":
        if _is_int_zero(rhs):
            return lhs
        if lhs is rhs:
            return ConstantInt(inst.type, 0)  # type: ignore[arg-type]
        # (x + y) - x -> y ; (x + y) - y -> x   [XSBench, paper Section V]
        if isinstance(lhs, BinaryInst) and lhs.opcode == "add":
            if lhs.lhs is rhs:
                return lhs.rhs
            if lhs.rhs is rhs:
                return lhs.lhs
        # x - (x + y) -> -y is not cheaper; skip.
        # (x - y) where x == y + z -> handled above via add.
    elif op == "mul":
        if _is_int_zero(rhs):
            return rhs
        if _is_int_one(rhs):
            return lhs
    elif op in ("sdiv", "udiv"):
        if _is_int_one(rhs):
            return lhs
        if lhs is rhs and isinstance(rhs, ConstantInt) and not rhs.is_zero:
            return ConstantInt(inst.type, 1)  # type: ignore[arg-type]
    elif op in ("srem", "urem"):
        if _is_int_one(rhs):
            return ConstantInt(inst.type, 0)  # type: ignore[arg-type]
    elif op in ("shl", "lshr", "ashr"):
        if _is_int_zero(rhs):
            return lhs
        if _is_int_zero(lhs):
            return lhs
    elif op == "and":
        if lhs is rhs:
            return lhs
        if _is_int_zero(rhs):
            return rhs
        if isinstance(rhs, ConstantInt) and \
                rhs.unsigned() == rhs.type.max_unsigned:  # type: ignore[attr-defined]
            return lhs
    elif op == "or":
        if lhs is rhs:
            return lhs
        if _is_int_zero(rhs):
            return lhs
    elif op == "xor":
        if lhs is rhs:
            return ConstantInt(inst.type, 0)  # type: ignore[arg-type]
        if _is_int_zero(rhs):
            return lhs
        # Double negation of booleans: xor (xor x, true), true -> x.
        if isinstance(rhs, ConstantInt) and rhs.is_true and \
                isinstance(lhs, BinaryInst) and lhs.opcode == "xor" and \
                isinstance(lhs.rhs, ConstantInt) and lhs.rhs.is_true:
            return lhs.lhs
    elif op == "fadd":
        if _is_fp_zero(rhs, positive_only=True):
            return lhs
        if _is_fp_zero(lhs, positive_only=True):
            return rhs
    elif op == "fsub":
        if _is_fp_zero(rhs, positive_only=True):
            return lhs
    elif op == "fmul":
        if _is_fp_one(rhs):
            return lhs
        if _is_fp_one(lhs):
            return rhs
    elif op == "fdiv":
        if _is_fp_one(rhs):
            return lhs
    return None


def _is_int_zero(value: Value) -> bool:
    return isinstance(value, ConstantInt) and value.is_zero


def _is_int_one(value: Value) -> bool:
    return isinstance(value, ConstantInt) and value.is_one


def _is_fp_zero(value: Value, positive_only: bool = False) -> bool:
    import math

    if not isinstance(value, ConstantFloat) or value.value != 0.0:
        return False
    if positive_only and math.copysign(1.0, value.value) < 0:
        return False
    return True


def _is_fp_one(value: Value) -> bool:
    return isinstance(value, ConstantFloat) and value.value == 1.0


# ---------------------------------------------------------------------------
# Comparisons
# ---------------------------------------------------------------------------

def _simplify_icmp(inst: ICmpInst) -> Optional[Value]:
    if inst.lhs is inst.rhs:
        reflexive_true = inst.predicate in ("eq", "sle", "sge", "ule", "uge")
        return bool_const(reflexive_true)
    return None


# ---------------------------------------------------------------------------
# Select
# ---------------------------------------------------------------------------

def _simplify_select(inst: SelectInst) -> Optional[Value]:
    if inst.true_value is inst.false_value:
        return inst.true_value
    cond = inst.condition
    if isinstance(cond, ConstantInt):
        return inst.true_value if cond.value else inst.false_value
    # select c, true, false -> c ; select c, false, true -> xor c, true
    tv, fv = inst.true_value, inst.false_value
    if isinstance(tv, ConstantInt) and isinstance(fv, ConstantInt) and \
            inst.type.is_bool:
        if tv.is_true and fv.is_false:
            return cond
    return None


def run_instcombine(func: Function) -> bool:
    """Convenience wrapper."""
    return InstCombine().run(func)
