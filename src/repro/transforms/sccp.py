"""Sparse conditional constant propagation (SCCP).

Classic Wegman–Zadeck lattice propagation over SSA with CFG edge
executability.  After u&u, many duplicated condition re-evaluations become
constant *on their path*; SCCP is one of the "subsequent optimizations" the
paper leans on (its compile-time analysis attributes most inflation to
LLVM's IPSCCP processing the duplicated code, Section IV RQ2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir.block import BasicBlock
from ..ir.constants import Constant, ConstantFloat, ConstantInt, Undef
from ..ir.function import Function
from ..ir.instructions import (BranchInst, CondBranchInst, Instruction,
                               PhiInst, RetInst, TerminatorInst)
from ..ir.values import Argument, GlobalVariable, Value
from ..obs import session as obs
from .fold import fold_instruction

# Lattice: TOP (undetermined) > constant > BOTTOM (overdefined).
_TOP = "top"
_BOTTOM = "bottom"


class _Lattice:
    __slots__ = ("state", "constant")

    def __init__(self) -> None:
        self.state = _TOP
        self.constant: Optional[Constant] = None

    def meet_constant(self, value: Constant) -> bool:
        """Lower to ``value``; returns True if the cell changed."""
        if self.state == _BOTTOM:
            return False
        if self.state == _TOP:
            self.state = "const"
            self.constant = value
            return True
        if self.constant is not value:
            self.state = _BOTTOM
            self.constant = None
            return True
        return False

    def meet_bottom(self) -> bool:
        if self.state == _BOTTOM:
            return False
        self.state = _BOTTOM
        self.constant = None
        return True


class SparseConditionalConstantPropagation:
    """The SCCP pass: propagates constants, prunes non-executable edges."""

    name = "sccp"

    def run(self, func: Function) -> bool:
        cells: Dict[int, _Lattice] = {}
        executable_edges: Set[Tuple[int, int]] = set()
        executable_blocks: Set[int] = set()
        block_work: List[BasicBlock] = [func.entry]
        inst_work: List[Instruction] = []

        def cell(value: Value) -> _Lattice:
            c = cells.get(id(value))
            if c is None:
                c = _Lattice()
                cells[id(value)] = c
            return c

        def value_of(value: Value) -> Tuple[str, Optional[Constant]]:
            if isinstance(value, Constant) and not isinstance(value, Undef):
                return "const", value
            if isinstance(value, (Argument, GlobalVariable)):
                return _BOTTOM, None
            if isinstance(value, Undef):
                return _TOP, None
            c = cell(value)
            return c.state if c.state != "const" else "const", c.constant

        def push_users(inst: Instruction) -> None:
            for user in inst.users():
                if isinstance(user, Instruction) and user.parent is not None:
                    if id(user.parent) in executable_blocks:
                        inst_work.append(user)

        def mark_edge(src: BasicBlock, dst: BasicBlock) -> None:
            key = (id(src), id(dst))
            if key in executable_edges:
                return
            executable_edges.add(key)
            if id(dst) not in executable_blocks:
                block_work.append(dst)
            else:
                # New edge into an already-visited block: revisit its phis.
                inst_work.extend(dst.phis())

        def visit_inst(inst: Instruction) -> None:
            if isinstance(inst, TerminatorInst):
                visit_terminator(inst)
                return
            if inst.type.is_void:
                return
            c = cell(inst)
            if c.state == _BOTTOM:
                return
            if isinstance(inst, PhiInst):
                changed = visit_phi(inst, c)
            else:
                changed = visit_compute(inst, c)
            if changed:
                push_users(inst)

        def visit_phi(phi: PhiInst, c: _Lattice) -> bool:
            block = phi.parent
            assert block is not None
            changed = False
            for value, pred in phi.incoming():
                if (id(pred), id(block)) not in executable_edges:
                    continue
                state, constant = value_of(value)
                if state == _BOTTOM:
                    changed |= c.meet_bottom()
                    break
                if state == "const":
                    assert constant is not None
                    changed |= c.meet_constant(constant)
                    if c.state == _BOTTOM:
                        break
            return changed

        def visit_compute(inst: Instruction, c: _Lattice) -> bool:
            # If any operand is overdefined, the result usually is too;
            # if all are constants, fold.
            operand_states = [value_of(op) for op in inst.operands]
            if any(s == _TOP for s, _ in operand_states):
                return False  # Wait for operands to resolve.
            if all(s == "const" for s, _ in operand_states) and inst.is_pure:
                subst = _substituted_fold(inst, [k for _, k in operand_states])
                if subst is not None:
                    return c.meet_constant(subst)
            return c.meet_bottom()

        def visit_terminator(term: TerminatorInst) -> None:
            block = term.parent
            assert block is not None
            if isinstance(term, BranchInst):
                mark_edge(block, term.target)
            elif isinstance(term, CondBranchInst):
                state, constant = value_of(term.condition)
                if state == "const" and isinstance(constant, ConstantInt):
                    target = term.true_target if constant.value else term.false_target
                    mark_edge(block, target)
                elif state == _BOTTOM:
                    mark_edge(block, term.true_target)
                    mark_edge(block, term.false_target)
                # TOP: neither edge executable yet.

        # -- propagate to fixpoint ----------------------------------------
        while block_work or inst_work:
            while inst_work:
                visit_inst(inst_work.pop())
            if block_work:
                block = block_work.pop()
                if id(block) in executable_blocks:
                    continue
                executable_blocks.add(id(block))
                for inst in block.instructions:
                    visit_inst(inst)

        # -- rewrite ------------------------------------------------------
        changed = False
        propagated = 0   # Instructions proven constant and substituted.
        folded_branches = 0
        for block in func.blocks:
            if id(block) not in executable_blocks:
                continue
            for inst in list(block.instructions):
                if inst.type.is_void or isinstance(inst, TerminatorInst):
                    continue
                c = cells.get(id(inst))
                if c is not None and c.state == "const" and inst.is_used:
                    inst.replace_all_uses_with(c.constant)  # type: ignore[arg-type]
                    changed = True
                    propagated += 1
            term = block.terminator
            if isinstance(term, CondBranchInst):
                # Prune edges SCCP proved non-executable even when the
                # condition did not collapse to a constant cell (e.g. it is
                # a constant value already).
                state, constant = value_of(term.condition)
                if state == "const" and isinstance(constant, ConstantInt) and \
                        not isinstance(term.condition, ConstantInt):
                    term.set_operand(0, constant)
                    changed = True
                    folded_branches += 1
        if changed and obs.active() is not None:
            unreachable = sum(1 for b in func.blocks
                              if id(b) not in executable_blocks)
            obs.remark("analysis", self.name, func.name,
                       "propagated constants",
                       propagated=propagated,
                       folded_branches=folded_branches,
                       unreachable_blocks=unreachable)
        return changed


def _substituted_fold(inst: Instruction,
                      constants: List[Optional[Constant]]) -> Optional[Constant]:
    """Fold ``inst`` as if its operands were the given constants.

    Avoids mutating the IR during analysis: temporarily swaps operands in,
    folds, and restores.
    """
    originals = list(inst.operands)
    try:
        for i, konst in enumerate(constants):
            if konst is not None:
                inst.set_operand(i, konst)
        return fold_instruction(inst)
    finally:
        for i, original in enumerate(originals):
            inst.set_operand(i, original)


def run_sccp(func: Function) -> bool:
    """Convenience wrapper."""
    return SparseConditionalConstantPropagation().run(func)
