"""Dead code elimination.

Removes pure instructions with no uses, iterating so chains of dead
computations collapse.  This is the pass that actually deletes the
re-evaluations of conditions u&u proves redundant (paper Section III-B:
"subsequent optimizations enabled by our approach result in dead code
elimination opportunities").
"""

from __future__ import annotations

from typing import List

from ..ir.function import Function
from ..ir.instructions import Instruction, PhiInst
from ..obs import session as obs


class DeadCodeElimination:
    """Classic worklist DCE over pure, unused instructions."""

    name = "dce"

    def run(self, func: Function) -> bool:
        erased = 0
        work: List[Instruction] = [
            inst for block in func.blocks for inst in block.instructions]
        while work:
            inst = work.pop()
            if inst.parent is None:
                continue  # Already erased.
            if not self._is_dead(inst):
                continue
            operands = [op for op in inst.operands
                        if isinstance(op, Instruction)]
            inst.erase_from_parent()
            erased += 1
            work.extend(operands)
        if erased and obs.active() is not None:
            obs.remark("analysis", self.name, func.name,
                       "erased dead instructions", erased=erased)
        return erased > 0

    @staticmethod
    def _is_dead(inst: Instruction) -> bool:
        if inst.is_terminator:
            return False
        if isinstance(inst, PhiInst):
            # A phi used only by itself (its own back-edge entry) is dead.
            return all(u.user is inst for u in inst.uses)
        if inst.is_used:
            return False
        return inst.is_pure


def run_dce(func: Function) -> bool:
    """Convenience wrapper."""
    return DeadCodeElimination().run(func)
