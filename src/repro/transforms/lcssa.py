"""LCSSA (Loop-Closed SSA) form.

Values defined inside a loop and used outside are routed through phis in the
loop's exit blocks.  Both unrolling and unmerging add predecessors to exit
blocks; with LCSSA in place they only need to extend those exit phis instead
of performing general SSA reconstruction — the same reason LLVM requires
LCSSA before its loop passes.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.loops import Loop
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction, PhiInst


def form_lcssa(func: Function, loop: Loop) -> bool:
    """Rewrite out-of-loop uses of in-loop definitions through exit phis.

    Returns True if any rewrite happened.  Supports the common case where
    each out-of-loop use is dominated by a single exit block (always true
    for the single-exit loops our frontend produces); raises otherwise.
    """
    from ..analysis.dominators import DominatorTree

    exit_blocks = loop.exit_blocks()
    if not exit_blocks:
        return False
    changed = False
    domtree = DominatorTree.compute(func)
    # All predecessors — an exit block may have out-of-loop predecessors
    # too (e.g. it is the header of a following loop); the LCSSA phi needs
    # one entry per predecessor.
    preds_of_exit: Dict[int, List[BasicBlock]] = {
        id(e): e.predecessors() for e in exit_blocks}

    for block in list(loop.blocks):
        for inst in list(block.instructions):
            if inst.type.is_void:
                continue
            outside_uses = []
            for use in list(inst.uses):
                user = use.user
                if not isinstance(user, Instruction) or user.parent is None:
                    continue
                user_block = user.parent
                if isinstance(user, PhiInst):
                    user_block = user.incoming_blocks[use.index]
                if not loop.contains(user_block):
                    outside_uses.append(use)
            if not outside_uses:
                continue
            # One LCSSA phi per exit block that can see the definition.
            phis: Dict[int, PhiInst] = {}
            for exit_block in exit_blocks:
                all_preds = preds_of_exit[id(exit_block)]
                loop_preds = [p for p in all_preds if loop.contains(p)]
                if not all(domtree.dominates_block(block, p)
                           for p in loop_preds):
                    continue
                phi = PhiInst(inst.type)
                phi.name = func.unique_name(f"{inst.name or 'v'}.lcssa")
                exit_block.insert(exit_block.first_non_phi_index(), phi)
                for pred in all_preds:
                    if domtree.dominates_block(exit_block, pred):
                        # Back edge into the exit block (it is the header
                        # of a following loop): the value must *circulate*
                        # through the phi.  Re-reading the raw definition
                        # here would observe a stale dynamic value once
                        # unrolling moves the loop exit to a cloned header.
                        phi.add_incoming(phi, pred)
                    elif domtree.dominates_block(block, pred):
                        phi.add_incoming(inst, pred)
                    else:
                        # Genuine bypass path: the value is never observed.
                        from ..ir.constants import Undef

                        phi.add_incoming(Undef(inst.type), pred)
                phis[id(exit_block)] = phi
            for use in outside_uses:
                user = use.user
                assert isinstance(user, Instruction)
                use_block = user.parent
                assert use_block is not None
                if isinstance(user, PhiInst):
                    use_block = user.incoming_blocks[use.index]
                target_phi = None
                for exit_block in exit_blocks:
                    phi = phis.get(id(exit_block))
                    if phi is None or user is phi:
                        continue
                    if domtree.dominates_block(exit_block, use_block):
                        target_phi = phi
                        break
                if target_phi is None:
                    raise NotImplementedError(
                        f"LCSSA: use of %{inst.name} in {use_block.name} is "
                        f"not dominated by a single exit block")
                use.set(target_phi)
                changed = True
    return changed
