"""Pass manager: runs passes over functions, with timing and statistics.

Mirrors (in spirit) LLVM's new pass manager: passes are callables over a
function returning whether they changed anything; the manager collects
per-pass wall time, which the harness reports as "compile time" — the
paper's Figure 6c measures exactly this inflation caused by other passes
having to process u&u-duplicated code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol

from ..ir.function import Function
from ..ir.module import Module
from ..ir.verifier import verify_function
from ..obs import session as obs


def _ir_size(func: Function) -> "tuple[int, int]":
    """(instructions, blocks) — the IR delta recorded on trace spans."""
    return sum(len(b.instructions) for b in func.blocks), len(func.blocks)


class CompileTimeout(Exception):
    """Raised when a pipeline exceeds its compile-time budget.

    The paper hit the same wall: on ccs, four loops' compilations timed out
    after 5 minutes (Section IV RQ2).  The harness records such cells as
    timed out and excludes them from the figures, as the paper did.
    """


class FunctionPass(Protocol):
    """A function transformation: returns True if the IR changed."""

    name: str

    def run(self, func: Function) -> bool:  # pragma: no cover - protocol
        ...


@dataclass
class PassStatistics:
    """Aggregated per-pass counters for one pipeline run."""

    times: Dict[str, float] = field(default_factory=dict)
    runs: Dict[str, int] = field(default_factory=dict)
    changes: Dict[str, int] = field(default_factory=dict)

    def record(self, name: str, seconds: float, changed: bool) -> None:
        self.times[name] = self.times.get(name, 0.0) + seconds
        self.runs[name] = self.runs.get(name, 0) + 1
        if changed:
            self.changes[name] = self.changes.get(name, 0) + 1

    @property
    def total_time(self) -> float:
        return sum(self.times.values())

    def merge(self, other: "PassStatistics") -> None:
        """Accumulate another run's counters (for cross-cell aggregation)."""
        for name, seconds in other.times.items():
            self.times[name] = self.times.get(name, 0.0) + seconds
        for name, runs in other.runs.items():
            self.runs[name] = self.runs.get(name, 0) + runs
        for name, changes in other.changes.items():
            self.changes[name] = self.changes.get(name, 0) + changes

    def dominant_pass(self) -> Optional[str]:
        """The pass consuming the largest share of compile time."""
        if not self.times:
            return None
        return max(self.times, key=lambda n: self.times[n])


class PassManager:
    """Runs a sequence of function passes over every function of a module."""

    def __init__(self, passes: Optional[List[FunctionPass]] = None,
                 verify_each: bool = False) -> None:
        self.passes: List[FunctionPass] = list(passes or [])
        self.verify_each = verify_each
        self.stats = PassStatistics()
        #: Absolute perf_counter() deadline; None disables the budget.
        self.deadline: Optional[float] = None

    def check_deadline(self) -> None:
        if self.deadline is not None and time.perf_counter() > self.deadline:
            raise CompileTimeout(
                f"compile budget exhausted before finishing the pipeline")

    def add(self, pass_: FunctionPass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run_function(self, func: Function) -> bool:
        changed_any = False
        tracer = obs.tracer()
        for pass_ in self.passes:
            self.check_deadline()
            if tracer is not None:
                insts_before, blocks_before = _ir_size(func)
                span_start = tracer.now()
            start = time.perf_counter()
            changed = pass_.run(func)
            elapsed = time.perf_counter() - start
            self.stats.record(pass_.name, elapsed, changed)
            if tracer is not None:
                insts_after, blocks_after = _ir_size(func)
                tracer.complete(pass_.name, "pass", span_start, elapsed, args={
                    "function": func.name, "changed": changed,
                    "insts_before": insts_before, "insts_after": insts_after,
                    "blocks_before": blocks_before,
                    "blocks_after": blocks_after,
                })
            changed_any |= changed
            if self.verify_each:
                try:
                    verify_function(func)
                except Exception as exc:
                    raise AssertionError(
                        f"pass {pass_.name} broke @{func.name}: {exc}") from exc
        return changed_any

    def run(self, module: Module) -> bool:
        changed = False
        for func in module.functions.values():
            changed |= self.run_function(func)
        return changed


class FixpointPassManager(PassManager):
    """Repeats the pass sequence until no pass reports a change.

    ``max_iterations`` bounds pathological ping-ponging; the cleanup
    pipeline converges in 2-4 iterations on all benchmarks.

    Later iterations skip passes that cannot make progress: a pass that
    reported "no change" is skipped until some *other* pass mutates the
    function again.  Passes are deterministic functions of the IR, so
    re-running one on the identical IR it just declined to change must
    decline again — the skip is provably output-preserving (the final IR
    is exactly what the naive loop produces); it only avoids redundant
    analysis work, and the redundant no-op runs it elides are simply not
    recorded in the timing statistics.
    """

    def __init__(self, passes: Optional[List[FunctionPass]] = None,
                 verify_each: bool = False, max_iterations: int = 8) -> None:
        super().__init__(passes, verify_each)
        self.max_iterations = max_iterations

    def run_function(self, func: Function) -> bool:
        changed_any = False
        tracer = obs.tracer()
        # ``version`` counts IR mutations; clean_at[i] records the version
        # at which pass i last reported no change.  While the version is
        # unchanged, re-running that pass is a guaranteed no-op.
        version = 0
        clean_at: Dict[int, int] = {}
        for iteration in range(self.max_iterations):
            iteration_changed = False
            for index, pass_ in enumerate(self.passes):
                if clean_at.get(index) == version:
                    continue
                self.check_deadline()
                if tracer is not None:
                    insts_before, blocks_before = _ir_size(func)
                    span_start = tracer.now()
                start = time.perf_counter()
                changed = pass_.run(func)
                elapsed = time.perf_counter() - start
                self.stats.record(pass_.name, elapsed, changed)
                if tracer is not None:
                    insts_after, blocks_after = _ir_size(func)
                    tracer.complete(pass_.name, "pass", span_start, elapsed,
                                    args={
                                        "function": func.name,
                                        "changed": changed,
                                        "iteration": iteration,
                                        "insts_before": insts_before,
                                        "insts_after": insts_after,
                                        "blocks_before": blocks_before,
                                        "blocks_after": blocks_after,
                                    })
                if changed:
                    version += 1
                    clean_at.pop(index, None)
                    iteration_changed = True
                else:
                    clean_at[index] = version
                if self.verify_each:
                    try:
                        verify_function(func)
                    except Exception as exc:
                        raise AssertionError(
                            f"pass {pass_.name} broke @{func.name}: "
                            f"{exc}") from exc
            if not iteration_changed:
                break
            changed_any = True
        return changed_any
