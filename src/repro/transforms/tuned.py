"""Config-driven u&u: apply persisted per-loop tuning decisions.

:class:`TunedUU` is the :class:`~repro.transforms.heuristic.HeuristicUU`
sibling for the ``tuned`` pipeline configuration: instead of *deriving*
per-loop decisions from the static cost model, it *replays* decisions an
empirical search persisted (see :mod:`repro.tune`).  Each decision names a
loop and the transform to apply:

* ``factor >= 2, unmerge``  — unroll-and-unmerge (``apply_uu``);
* ``factor == 1, unmerge``  — pure unmerging (u&u with u' = 1);
* ``factor >= 2, !unmerge`` — plain unrolling (the loop is claimed so the
  late baseline unroller keeps its hands off, exactly like the paper's
  per-loop ``unroll`` configuration).

Like the heuristic pass, loops are re-found by their (stable) header
object before each application — applying one transform relayouts the
function — and every outcome is recorded as a
:class:`~repro.transforms.heuristic.LoopDecision` so ``repro``'s reporting
and the remark stream render tuned and heuristic runs identically.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analysis.cost_model import loop_size
from ..analysis.loops import LoopInfo
from ..analysis.paths import count_paths
from ..ir.function import Function
from ..obs import session as obs
from .heuristic import LoopDecision
from .unroll import can_unroll, unroll_loop
from .uu import apply_uu, uu_applicable


class TunedUU:
    """Whole-function replay of persisted per-loop tuning decisions.

    ``decisions`` is duck-typed over ``loop_id``/``factor``/``unmerge``
    (normally :class:`repro.tune.store.TunedLoopDecision`).  Decisions
    naming loops of other functions are ignored; decisions whose loop no
    longer exists (or fails its legality check) are recorded as skipped,
    never silently dropped.
    """

    name = "tuned-uu"

    def __init__(self, decisions: Sequence,
                 max_instructions: int = 200_000) -> None:
        self.tuned_decisions = list(decisions)
        self.max_instructions = max_instructions
        #: LoopDecision log, same shape as ``HeuristicUU.decisions`` so
        #: cells, caches, and reports treat both providers uniformly.
        self.decisions: List[LoopDecision] = []

    def run(self, func: Function) -> bool:
        loop_info = LoopInfo.compute(func)
        by_id = {loop.loop_id: loop for loop in loop_info.loops}
        prefix = f"{func.name}:"
        changed = False
        logged: List[LoopDecision] = []
        for tuned in self.tuned_decisions:
            if not str(tuned.loop_id).startswith(prefix):
                continue
            original = by_id.get(tuned.loop_id)
            if original is None:
                logged.append(LoopDecision(
                    tuned.loop_id, 0, 0, tuned.factor,
                    "tuned", applied=False))
                continue
            paths = count_paths(original, loop_info)
            size = loop_size(original)
            decision = LoopDecision(tuned.loop_id, paths, size,
                                    tuned.factor, "tuned")
            # Re-find the loop by header: earlier applications relayout.
            header = original.header
            target = None
            for loop in LoopInfo.compute(func).loops:
                if loop.header is header:
                    target = loop
                    break
            if target is None:
                decision.applied = False
                logged.append(decision)
                continue
            decision.applied = self._apply(func, target, tuned)
            changed |= bool(decision.applied)
            logged.append(decision)
        self.decisions.extend(logged)
        if obs.active() is not None:
            for d, tuned in zip(logged,
                                [t for t in self.tuned_decisions
                                 if str(t.loop_id).startswith(prefix)]):
                what = ("unroll-and-unmerge" if tuned.unmerge and
                        tuned.factor >= 2 else
                        "unmerge" if tuned.unmerge else "unroll")
                if d.applied:
                    obs.remark("applied", self.name, func.name,
                               f"tuned {what} with u={tuned.factor}",
                               loop_id=d.loop_id, u=tuned.factor,
                               unmerge=tuned.unmerge, p=d.paths, s=d.size)
                else:
                    obs.remark("missed", self.name, func.name,
                               f"tuned {what} u={tuned.factor} not applied "
                               "(loop vanished or transform declined)",
                               loop_id=d.loop_id, u=tuned.factor,
                               unmerge=tuned.unmerge)
        return changed

    def _apply(self, func: Function, loop, tuned) -> bool:
        if tuned.unmerge:
            if not uu_applicable(func, loop):
                return False
            return apply_uu(func, loop, max(1, tuned.factor),
                            max_instructions=self.max_instructions)
        if tuned.factor < 2 or not can_unroll(loop):
            return False
        claimed = set(func.attributes.get("uu_claimed_loops", ()))
        claimed.add(loop.loop_id)
        func.attributes["uu_claimed_loops"] = claimed
        unroll_loop(func, loop, tuned.factor)
        return True
