"""Redundant load elimination with a restrict-based alias model.

The paper's rainflow analysis (Section V) shows u&u eliminating loads: once
paths are unmerged, the compiler knows ``x[i+1]`` loaded this iteration is
``x[i]`` of the next, and that ``y[j]`` equals the value just stored.  This
pass implements exactly that, with deliberately *path-local* availability:

* load availability flows only through **single-predecessor** edges —
  a merge block starts with nothing available (the information loss the
  paper attributes to control-flow merges);
* stores forward their value to subsequent loads of the same address and
  invalidate potentially-aliasing addresses;
* alias decisions use base-object reasoning: distinct ``__restrict__``
  arguments (``Function.attributes["restrict_args"]``), distinct globals
  and distinct allocas never alias;
* convergent operations (barriers) invalidate everything.

Because GVN runs first and deduplicates GEPs, identical addresses are
identical ``Value`` objects, so availability keys on value identity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.cfg_utils import predecessor_map, reverse_postorder
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (AllocaInst, CallInst, GEPInst, Instruction,
                               LoadInst, StoreInst)
from ..ir.values import Argument, GlobalVariable, Value


def base_object(ptr: Value) -> Value:
    """Walk GEP chains back to the underlying base pointer."""
    seen = 0
    while isinstance(ptr, GEPInst):
        ptr = ptr.pointer
        seen += 1
        if seen > 64:  # Defensive bound; chains are short.
            break
    return ptr


def may_alias(a: Value, b: Value, restrict_args: Set[str]) -> bool:
    """Conservative may-alias query on two pointer values."""
    if a is b:
        return True
    base_a, base_b = base_object(a), base_object(b)
    if base_a is base_b:
        return True  # Same base, unknown offsets.
    kinds = (base_a, base_b)
    # Distinct identified objects never alias each other.
    identified = sum(isinstance(x, (GlobalVariable, AllocaInst)) for x in kinds)
    if identified == 2:
        return False
    if isinstance(base_a, AllocaInst) or isinstance(base_b, AllocaInst):
        # A local allocation never aliases an argument or global.
        return False
    if isinstance(base_a, Argument) and isinstance(base_b, Argument):
        if base_a.name in restrict_args and base_b.name in restrict_args:
            return False
        return True
    if isinstance(base_a, Argument) and isinstance(base_b, GlobalVariable):
        return base_a.name not in restrict_args
    if isinstance(base_b, Argument) and isinstance(base_a, GlobalVariable):
        return base_b.name not in restrict_args
    return True


class LoadElimination:
    """Forward-substitutes redundant loads along unmerged paths."""

    name = "load-elim"

    def run(self, func: Function) -> bool:
        restrict_args: Set[str] = set(func.attributes.get("restrict_args", ()))
        changed = False
        preds = predecessor_map(func)
        rpo = reverse_postorder(func)
        rpo_pos = {id(b): i for i, b in enumerate(rpo)}
        avail_out: Dict[int, Dict[int, Tuple[Value, Value]]] = {}

        for block in rpo:
            block_preds = preds[block]
            if len(block_preds) == 1 and \
                    rpo_pos.get(id(block_preds[0]), 1 << 30) < rpo_pos[id(block)]:
                # Forward single-predecessor edge: inherit availability.
                avail = dict(avail_out.get(id(block_preds[0]), {}))
            else:
                avail = {}

            for inst in list(block.instructions):
                if isinstance(inst, LoadInst):
                    entry = avail.get(id(inst.pointer))
                    if entry is not None and entry[1].type is inst.type:
                        inst.replace_all_uses_with(entry[1])
                        inst.erase_from_parent()
                        changed = True
                    else:
                        avail[id(inst.pointer)] = (inst.pointer, inst)
                elif isinstance(inst, StoreInst):
                    self._invalidate(avail, inst.pointer, restrict_args)
                    avail[id(inst.pointer)] = (inst.pointer, inst.value)
                elif isinstance(inst, CallInst) and not inst.is_pure:
                    avail.clear()
            avail_out[id(block)] = avail
        return changed

    @staticmethod
    def _invalidate(avail: Dict[int, Tuple[Value, Value]], store_ptr: Value,
                    restrict_args: Set[str]) -> None:
        stale = [key for key, (ptr, _) in avail.items()
                 if may_alias(ptr, store_ptr, restrict_args)]
        for key in stale:
            del avail[key]


def run_load_elim(func: Function) -> bool:
    """Convenience wrapper."""
    return LoadElimination().run(func)
