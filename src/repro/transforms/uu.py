"""The combined *unroll-and-unmerge* (u&u) pass — the paper's contribution.

Applies, to one loop identified by its deterministic id:

1. loop unrolling by the requested factor (each copy keeps its exit check);
2. control-flow unmerging of the widened loop, innermost loops first — in
   loop nests, inner loops are *unmerged but not unrolled*, matching the
   paper's default (Section III-C);

and records the loop as claimed so the baseline unroller keeps its hands off
(the pipeline interaction behind the paper's `coordinates` observation).

Loops containing convergent operations (``syncthreads``) are skipped, as are
loops carrying an explicit unroll pragma (``loop_pragmas`` function
attribute) — both rules straight from Section III-C.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..analysis.convergence import loop_is_convergent
from ..analysis.loops import Loop, LoopInfo
from ..ir.function import Function
from ..obs import session as obs
from .unmerge import UnmergeBudgetExceeded, unmerge_loop
from .unroll import can_unroll, unroll_loop


class UnrollAndUnmerge:
    """u&u on a single loop of a function."""

    name = "uu"

    def __init__(self, loop_id: str, factor: int,
                 max_instructions: int = 200_000,
                 unroll_inner: bool = False) -> None:
        self.loop_id = loop_id
        self.factor = factor
        self.max_instructions = max_instructions
        self.unroll_inner = unroll_inner

    def run(self, func: Function) -> bool:
        loop_info = LoopInfo.compute(func)
        loop = loop_info.by_id(self.loop_id)
        if loop is None:
            obs.remark("missed", self.name, func.name, "loop not found",
                       loop_id=self.loop_id)
            return False
        changed = apply_uu(func, loop, self.factor,
                           max_instructions=self.max_instructions,
                           unroll_inner=self.unroll_inner)
        if changed:
            obs.remark("applied", self.name, func.name,
                       f"unroll-and-unmerge with u'={self.factor}",
                       loop_id=self.loop_id, u_prime=self.factor)
        return changed


def apply_uu(func: Function, loop: Loop, factor: int,
             max_instructions: int = 200_000,
             unroll_inner: bool = False,
             selective: bool = False) -> bool:
    """Run u&u on ``loop``; returns True if the IR changed.

    ``selective=True`` enables partial unmerging (the paper's Section VI
    extension): only profitably-unmergeable merge blocks are duplicated.
    """
    if not uu_applicable(func, loop):
        obs.remark("missed", "uu", func.name, "convergent or pragma",
                   loop_id=loop.loop_id)
        return False
    header = loop.header
    claimed = set(func.attributes.get("uu_claimed_loops", ()))
    claimed.add(loop.loop_id)
    func.attributes["uu_claimed_loops"] = claimed

    changed = False
    if factor >= 2 and can_unroll(loop):
        if unroll_inner:
            # Optional mode: unroll every inner loop by the same factor
            # before the outer loop (paper: "the pass is capable of
            # unrolling nested loops as well").
            for inner in _nested_loops_innermost_first(func, header):
                if inner.header is header or not can_unroll(inner):
                    continue
                if loop_is_convergent(inner):
                    continue
                unroll_loop(func, inner, factor)
                changed = True
        loop_info = LoopInfo.compute(func)
        loop = _loop_by_header(loop_info, header)
        if loop is None:
            return changed
        unroll_loop(func, loop, factor)
        changed = True

    # Unmerge the widened outer loop and every nested loop, deepest first.
    # Iterate by header: unmerging one loop clones blocks and invalidates
    # previously computed Loop objects, so each target is re-discovered.
    headers = [l.header for l in _nested_loops_innermost_first(func, header)]
    for target_header in headers:
        loop_info = LoopInfo.compute(func)
        target = _loop_by_header(loop_info, target_header)
        if target is None:
            continue
        try:
            changed |= unmerge_loop(func, target, max_instructions,
                                    selective=selective)
        except UnmergeBudgetExceeded:
            changed = True
            break
    return changed


def uu_applicable(func: Function, loop: Loop) -> bool:
    """The paper's legality filters: no convergent ops, no user pragma."""
    if loop_is_convergent(loop):
        return False
    pragmas = func.attributes.get("loop_pragmas", {})
    if isinstance(pragmas, dict) and loop.loop_id in pragmas:
        return False
    return True


def _loop_by_header(loop_info: LoopInfo, header) -> Optional[Loop]:
    for loop in loop_info.loops:
        if loop.header is header:
            return loop
    return None


def _nested_loops_innermost_first(func: Function, header) -> List[Loop]:
    """The loop led by ``header`` plus all loops nested in it, deepest first.

    Recomputed from scratch because unrolling/unmerging clones inner loops.
    """
    loop_info = LoopInfo.compute(func)
    outer = _loop_by_header(loop_info, header)
    if outer is None:
        return []
    nested = [l for l in loop_info.loops
              if l is outer or outer.contains(l.header)]
    return sorted(nested, key=lambda l: -l.depth)
