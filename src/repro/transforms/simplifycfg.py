"""CFG simplification.

The clean-up companion of every duplication-based transform:

* folds conditional branches on constants (the step that deletes the
  provably-dead paths u&u exposes, cf. paper Figure 5);
* normalises conditional branches with identical targets;
* deletes unreachable blocks (with phi repair);
* merges a block into its unique predecessor when that predecessor has a
  single successor;
* threads trivial forwarding blocks (only an unconditional branch) out of
  the CFG where phi consistency allows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.block import BasicBlock
from ..ir.constants import ConstantInt
from ..ir.function import Function
from ..ir.instructions import (BranchInst, CondBranchInst, Instruction,
                               PhiInst, TerminatorInst)
from ..ir.values import Value
from ..analysis.cfg_utils import predecessor_map, reachable_blocks


class SimplifyCFG:
    """Iterates local CFG simplifications to a fixed point."""

    name = "simplifycfg"

    def run(self, func: Function) -> bool:
        changed = False
        while self._run_once(func):
            changed = True
        return changed

    # -- one round ------------------------------------------------------------
    def _run_once(self, func: Function) -> bool:
        changed = False
        changed |= self._fold_constant_branches(func)
        changed |= self._remove_unreachable(func)
        changed |= self._merge_into_predecessor(func)
        changed |= self._thread_forwarding_blocks(func)
        changed |= self._simplify_trivial_phis(func)
        return changed

    # -- constant branches ------------------------------------------------------
    def _fold_constant_branches(self, func: Function) -> bool:
        changed = False
        for block in list(func.blocks):
            term = block.terminator
            if not isinstance(term, CondBranchInst):
                continue
            taken: Optional[BasicBlock] = None
            dead: Optional[BasicBlock] = None
            if isinstance(term.condition, ConstantInt):
                if term.condition.value:
                    taken, dead = term.true_target, term.false_target
                else:
                    taken, dead = term.false_target, term.true_target
            elif term.true_target is term.false_target:
                taken, dead = term.true_target, None
            if taken is None:
                continue
            if dead is not None and dead is not taken:
                self._remove_phi_edge(dead, block)
            term.erase_from_parent()
            block.append(BranchInst(taken))
            changed = True
        return changed

    @staticmethod
    def _remove_phi_edge(target: BasicBlock, pred: BasicBlock) -> None:
        for phi in target.phis():
            phi.remove_incoming(pred)

    # -- unreachable blocks ------------------------------------------------------
    def _remove_unreachable(self, func: Function) -> bool:
        reachable = reachable_blocks(func)
        dead = [b for b in func.blocks if id(b) not in reachable]
        if not dead:
            return False
        dead_ids = {id(b) for b in dead}
        # Phi entries from dead predecessors must go first.
        for block in func.blocks:
            if id(block) in dead_ids:
                continue
            for phi in block.phis():
                for i in reversed(range(len(phi.incoming_blocks))):
                    if id(phi.incoming_blocks[i]) in dead_ids:
                        phi.remove_operand(i)
                        del phi.incoming_blocks[i]
        for block in dead:
            # Erase instructions in reverse so uses inside the block go away
            # before their definitions.
            for inst in reversed(list(block.instructions)):
                from ..ir.constants import Undef

                if inst.is_used:
                    inst.replace_all_uses_with(Undef(inst.type))
                inst.erase_from_parent()
            func.remove_block(block)
        return True

    # -- merging straight-line chains ---------------------------------------------
    def _merge_into_predecessor(self, func: Function) -> bool:
        changed = False
        preds = predecessor_map(func)
        merged_away: set = set()
        merged_into: dict = {}
        for block in list(func.blocks):
            if block is func.entry or id(block) in merged_away:
                continue
            block_preds = preds.get(block)
            if block_preds is None or len(block_preds) != 1:
                continue
            pred = block_preds[0]
            while id(pred) in merged_away:
                pred = merged_into[id(pred)]
            term = pred.terminator
            if not isinstance(term, BranchInst) or pred is block:
                continue
            if term.target is not block:
                continue  # Stale predecessor info; next round will catch it.
            # Collapse phis (single predecessor: each has one incoming).
            for phi in block.phis():
                phi.replace_all_uses_with(phi.incoming_for(pred))
                phi.erase_from_parent()
            term.erase_from_parent()
            for inst in list(block.instructions):
                block.remove_instruction(inst)
                pred.append(inst)
            # Successor phis referencing `block` now come from `pred`.
            for succ in pred.successors():
                for phi in succ.phis():
                    for i, inc in enumerate(phi.incoming_blocks):
                        if inc is block:
                            phi.set_incoming_block(i, pred)
            func.remove_block(block)
            merged_away.add(id(block))
            merged_into[id(block)] = pred
            changed = True
        return changed

    # -- forwarding (empty) blocks -------------------------------------------------
    def _thread_forwarding_blocks(self, func: Function) -> bool:
        changed = False
        preds = predecessor_map(func)
        # Blocks whose predecessor set changed during this scan: defer them
        # to the next fixpoint round rather than acting on stale info.
        dirty: Set[int] = set()
        for block in list(func.blocks):
            if block is func.entry or len(block.instructions) != 1:
                continue
            if id(block) in dirty:
                continue
            term = block.terminator
            if not isinstance(term, BranchInst):
                continue
            succ = term.target
            if succ is block:
                continue
            block_preds = preds.get(block, [])
            if not block_preds:
                continue
            if any(pred.parent is None or
                   block not in pred.successors()
                   for pred in block_preds):
                continue
            if not self._can_thread(block, succ, block_preds):
                continue
            for pred in block_preds:
                pterm = pred.terminator
                assert pterm is not None
                # Update succ phis *before* rewiring so incoming_for works.
                for phi in succ.phis():
                    via_block = phi.incoming_for(block)
                    if phi.has_incoming_for(pred):
                        pass  # Same value guaranteed by _can_thread.
                    else:
                        phi.add_incoming(via_block, pred)
                pterm.replace_successor(block, succ)
            for phi in succ.phis():
                phi.remove_incoming(block)
            term.erase_from_parent()
            func.remove_block(block)
            dirty.add(id(succ))
            changed = True
        return changed

    @staticmethod
    def _can_thread(block: BasicBlock, succ: BasicBlock,
                    block_preds: List[BasicBlock]) -> bool:
        phis = succ.phis()
        for pred in block_preds:
            # A conditional branch whose other edge already reaches succ is
            # fine only if every phi agrees on the value for both edges.
            already = any(s is succ for s in pred.successors())
            if already:
                for phi in phis:
                    if phi.incoming_for(block) is not phi.incoming_for(pred):
                        return False
        return True

    # -- phis -----------------------------------------------------------------
    def _simplify_trivial_phis(self, func: Function) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            for block in func.blocks:
                for phi in list(block.phis()):
                    unique = phi.is_trivial()
                    if unique is not None:
                        phi.replace_all_uses_with(unique)
                        phi.erase_from_parent()
                        progress = True
                        changed = True
        return changed


def run_simplifycfg(func: Function) -> bool:
    """Convenience wrapper."""
    return SimplifyCFG().run(func)
