"""Loop-invariant code motion (LICM).

Part of the baseline -O3 pipeline: hoists loop-invariant pure computations
(and loads whose address is invariant and not clobbered by any in-loop
store) into the preheader.  Without LICM, unroll-and-unmerge would get
credit for removing redundant invariant loads that a production baseline
would never execute in the first place — LICM keeps the baseline honest so
the measured u&u wins are the paper's cross-iteration effects, not
accidental invariant-code removal.
"""

from __future__ import annotations

from typing import List, Set

from ..analysis.dominators import DominatorTree
from ..analysis.loops import Loop, LoopInfo
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (CallInst, Instruction, LoadInst, PhiInst,
                               StoreInst)
from ..ir.values import Value
from .load_elim import may_alias


class LoopInvariantCodeMotion:
    """Classic preheader-hoisting LICM, innermost loops first."""

    name = "licm"

    def run(self, func: Function) -> bool:
        changed = False
        loop_info = LoopInfo.compute(func)
        for loop in loop_info.innermost_first():
            changed |= self._run_on_loop(func, loop)
        return changed

    def _run_on_loop(self, func: Function, loop: Loop) -> bool:
        latches = loop.latches()
        if not latches:
            return False
        restrict_args: Set[str] = set(
            func.attributes.get("restrict_args", ()))
        stores = [inst for block in loop.blocks for inst in block.instructions
                  if isinstance(inst, StoreInst)]
        has_calls = any(
            isinstance(inst, CallInst) and not inst.is_pure
            for block in loop.blocks for inst in block.instructions)
        domtree = DominatorTree.compute(func)

        loop_ids = {id(b) for b in loop.blocks}
        invariant: Set[int] = set()

        def is_invariant_operand(value: Value) -> bool:
            if id(value) in invariant:
                return True
            if isinstance(value, Instruction):
                block = value.parent
                return block is None or id(block) not in loop_ids
            return True  # Constants, arguments, globals.

        hoisted: List[Instruction] = []
        progress = True
        while progress:
            progress = False
            for block in loop.blocks:
                # Only hoist from blocks that execute every iteration:
                # speculating conditional code would change behaviour on
                # trapping ops and waste issue slots on the GPU.
                if not all(domtree.dominates_block(block, latch)
                           for latch in latches):
                    continue
                for inst in block.instructions:
                    if id(inst) in invariant or isinstance(inst, PhiInst):
                        continue
                    if not all(is_invariant_operand(op)
                               for op in inst.operands):
                        continue
                    if isinstance(inst, LoadInst):
                        if has_calls:
                            continue
                        if any(may_alias(inst.pointer, st.pointer,
                                         restrict_args) for st in stores):
                            continue
                    elif not inst.is_pure or inst.info.may_trap:
                        continue
                    invariant.add(id(inst))
                    hoisted.append(inst)
                    progress = True

        if not hoisted:
            return False
        preheader = loop.ensure_preheader()
        for inst in hoisted:
            block = inst.parent
            assert block is not None
            block.remove_instruction(inst)
            preheader.insert_before_terminator(inst)
        return True


def run_licm(func: Function) -> bool:
    """Convenience wrapper."""
    return LoopInvariantCodeMotion().run(func)
