"""Dominator-scoped global value numbering with branch-fact propagation.

This pass is what turns u&u's structural duplication into actual instruction
elimination.  It walks the dominator tree with a scoped available-expression
table (classic dominator-based GVN) and, crucially, installs *branch facts*
on single-predecessor edges: when block ``B`` is only reachable as the true
target of ``br %c, T, F``, then inside ``B``'s dominance region ``%c`` is
``true``, any identical comparison re-evaluation folds to ``true``, the
negated comparison folds to ``false``, and an ``icmp eq x, C`` fact
substitutes ``C`` for ``x``.

Control-flow *merges destroy exactly these facts* — a merge block has
multiple predecessors, so no edge fact applies (the paper's core
observation, Section I).  Unmerging makes every duplicated path
single-predecessor, which is why this pass fires so much more often after
u&u than after plain unrolling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.dominators import DominatorTree
from ..ir.block import BasicBlock
from ..ir.constants import (Constant, ConstantInt, FALSE, TRUE, bool_const)
from ..ir.function import Function
from ..ir.instructions import (BinaryInst, CondBranchInst, FCmpInst, ICmpInst,
                               Instruction, PhiInst, TerminatorInst)
from ..ir.values import Value
from ..obs import session as obs
from .fold import fold_instruction
from .instcombine import simplify_instruction


class _Scopes:
    """Scoped dictionaries with an undo log per dominator-tree level."""

    def __init__(self) -> None:
        self.available: Dict[Tuple, Value] = {}
        self.replacements: Dict[int, Value] = {}
        self._undo: List[List[Tuple[str, object, object]]] = []

    def push(self) -> None:
        self._undo.append([])

    def pop(self) -> None:
        for kind, key, old in reversed(self._undo.pop()):
            table = self.available if kind == "avail" else self.replacements
            if old is _MISSING:
                del table[key]  # type: ignore[arg-type]
            else:
                table[key] = old  # type: ignore[assignment,index]

    def set_available(self, key: Tuple, value: Value) -> None:
        old = self.available.get(key, _MISSING)
        self._undo[-1].append(("avail", key, old))
        self.available[key] = value

    def set_replacement(self, value: Value, replacement: Value) -> None:
        key = id(value)
        old = self.replacements.get(key, _MISSING)
        self._undo[-1].append(("repl", key, old))
        self.replacements[key] = replacement

    def lookup(self, value: Value) -> Value:
        seen = 0
        while True:
            repl = self.replacements.get(id(value))
            if repl is None or repl is value:
                return value
            value = repl
            seen += 1
            if seen > 32:  # Defensive: replacement chains are tiny.
                return value


_MISSING = object()


class GlobalValueNumbering:
    """GVN + branch-fact propagation (see module docstring).

    ``branch_facts=False`` disables the edge-fact machinery (plain
    dominator-scoped value numbering) — used by the ablation benchmarks to
    quantify how much of u&u's benefit flows through provenance facts.
    """

    name = "gvn"

    def __init__(self, branch_facts: bool = True) -> None:
        self.branch_facts = branch_facts

    def run(self, func: Function) -> bool:
        from ..analysis.cfg_utils import predecessor_map

        domtree = DominatorTree.compute(func)
        scopes = _Scopes()
        self._changed = False
        self._rewrites = 0     # Operand substitutions via facts/leaders.
        self._simplified = 0   # Instructions folded away locally.
        self._cse = 0          # Instructions replaced by a dominating leader.
        pred_map = predecessor_map(func)

        # Iterative dominator-tree DFS: (enter, block) / (exit, block).
        stack: List[Tuple[str, BasicBlock]] = [("enter", domtree.root)]
        while stack:
            action, block = stack.pop()
            if action == "exit":
                scopes.pop()
                continue
            scopes.push()
            stack.append(("exit", block))
            self._enter_block(block, pred_map.get(block, []), scopes)
            self._process_block(block, scopes)
            for child in reversed(domtree.children(block)):
                stack.append(("enter", child))
        if self._changed and obs.active() is not None:
            obs.remark(
                "analysis", self.name, func.name,
                "eliminated redundancies",
                rewrites=self._rewrites, simplified=self._simplified,
                cse=self._cse, branch_facts=self.branch_facts)
        return self._changed

    # -- branch facts -----------------------------------------------------
    def _enter_block(self, block: BasicBlock, preds: List[BasicBlock],
                     scopes: _Scopes) -> None:
        if not self.branch_facts:
            return
        if len(preds) != 1:
            return
        pred = preds[0]
        term = pred.terminator
        if not isinstance(term, CondBranchInst):
            return
        # The edge must be unambiguous: block reached only as true target or
        # only as false target.
        if term.true_target is block and term.false_target is block:
            return
        branch_value = term.true_target is block
        cond = scopes.lookup(term.condition)
        self._install_fact(cond, branch_value, scopes)

    def _install_fact(self, cond: Value, truth: bool, scopes: _Scopes) -> None:
        constant = bool_const(truth)
        if isinstance(cond, Constant):
            return
        scopes.set_replacement(cond, constant)
        if isinstance(cond, (ICmpInst, FCmpInst)):
            key = cond.value_key()
            if key is not None:
                scopes.set_available(key, constant)
                negated = self._negated_key(cond)
                if negated is not None:
                    scopes.set_available(negated, bool_const(not truth))
            # Equality facts substitute constants for values on this path.
            if isinstance(cond, ICmpInst):
                if (cond.predicate == "eq" and truth) or \
                        (cond.predicate == "ne" and not truth):
                    self._install_equality(cond.lhs, cond.rhs, scopes)

    @staticmethod
    def _install_equality(lhs: Value, rhs: Value, scopes: _Scopes) -> None:
        if isinstance(rhs, Constant) and not isinstance(lhs, Constant):
            scopes.set_replacement(lhs, rhs)
        elif isinstance(lhs, Constant) and not isinstance(rhs, Constant):
            scopes.set_replacement(rhs, lhs)

    @staticmethod
    def _negated_key(cond) -> Optional[Tuple]:
        ops = (id(cond.lhs), id(cond.rhs))
        extra = (cond.negated_predicate(),)
        return (cond.opcode, extra, ops)

    # -- per-block numbering -----------------------------------------------
    def _process_block(self, block: BasicBlock, scopes: _Scopes) -> None:
        for inst in list(block.instructions):
            if inst.parent is None:
                continue
            # Rewrite operands through the replacement map.  Phi operands
            # flow along *edges*, not through this block, so facts valid
            # here must not rewrite them.
            if not isinstance(inst, PhiInst):
                for i, op in enumerate(inst.operands):
                    repl = scopes.lookup(op)
                    if repl is not op:
                        inst.set_operand(i, repl)
                        self._changed = True
                        self._rewrites += 1
            if isinstance(inst, (PhiInst, TerminatorInst)):
                continue
            if not inst.is_pure:
                continue
            # Try local simplification first (constant folding, algebra).
            simplified = simplify_instruction(inst)
            if simplified is not None and simplified is not inst:
                inst.replace_all_uses_with(simplified)
                inst.erase_from_parent()
                self._changed = True
                self._simplified += 1
                continue
            key = inst.value_key()
            if key is None:
                continue
            leader = scopes.available.get(key)
            if leader is not None:
                inst.replace_all_uses_with(leader)
                inst.erase_from_parent()
                self._changed = True
                self._cse += 1
            else:
                scopes.set_available(key, inst)


def run_gvn(func: Function) -> bool:
    """Convenience wrapper."""
    return GlobalValueNumbering().run(func)
