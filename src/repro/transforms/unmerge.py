"""Control-flow unmerging (the paper's core transformation).

Unmerging eliminates merge blocks inside a loop body by tail duplication
(Section III-A.1, Figure 2): a block with multiple in-loop predecessors is
duplicated — together with *everything reachable from it up to the back
edge*, the paper's "aggressively duplicates the entire path leading to the
initial loop header" — so that each predecessor continues into its own
private copy.  Afterwards every root-to-backedge path through the body is a
chain of single-predecessor blocks, which is precisely the shape on which
GVN's branch facts, SCCP and load elimination can exploit control-flow
provenance.

Structural rules (matching the paper's implementation notes):

* the loop header itself is never unmerged (it is the loop boundary);
* inner-loop headers are never unmerged (their two predecessors are the
  loop entry and their own latch; duplicating them would tear the inner
  loop apart) — inner-loop *bodies* are unmerged by invoking the pass on
  the inner loop, which the u&u driver does innermost-first;
* when the duplicated tail contains a whole inner loop, the inner loop is
  cloned wholesale (its back edge stays internal to each copy);
* loop exits and the loop header act as region boundaries: they are not
  duplicated, they just gain phi entries (LCSSA makes that sufficient);
* phi nodes in duplicated merge blocks collapse to the incoming value of
  the one predecessor that reaches each copy (the paper's footnote 1 on
  "unraveling" phis when control decays to a single predecessor block);
* a growth cap bounds the exponential worst case ``f(p, s, u)`` — hitting
  it aborts the transformation for that loop, the analogue of the paper's
  5-minute compile timeouts on ccs.

The pass maintains its region (loop blocks plus clones) incrementally: loop
analysis runs once per invocation, not once per duplication, keeping the
pass linear in the amount of code it produces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.cfg_utils import predecessor_map, reverse_postorder
from ..analysis.loops import Loop, LoopInfo
from ..ir.block import BasicBlock
from ..ir.clone import clone_blocks, map_value
from ..ir.function import Function
from ..ir.instructions import PhiInst
from ..ir.values import Value
from ..obs import session as obs
from .lcssa import form_lcssa


class UnmergeBudgetExceeded(Exception):
    """The duplication grew past the instruction cap (compile "timeout")."""


def unmerge_loop(func: Function, loop: Loop,
                 max_instructions: int = 60_000,
                 selective: bool = False) -> bool:
    """Unmerge all control-flow merges in ``loop``'s body.

    Returns True if the CFG changed.  Raises
    :class:`UnmergeBudgetExceeded` when duplication outgrows
    ``max_instructions`` summed over the function (the IR is left in a
    valid, partially-unmerged state).

    ``selective=True`` enables the paper's *partial unmerging* extension
    (Section VI): only merge blocks whose duplication can feed the cleanup
    passes are duplicated (see :mod:`repro.transforms.profitability`).
    """
    form_lcssa(func, loop)
    header = loop.header
    changed = False

    # Region and inner-loop bookkeeping, maintained incrementally.  Blocks
    # of nested loops are never unmerge candidates here: their merges belong
    # to the inner loop's own unmerge invocation (the u&u driver runs
    # innermost-first), and duplicating across an inner back edge would tear
    # the inner loop apart.
    region: Set[int] = {id(b) for b in loop.blocks}
    loop_info = LoopInfo.compute(func)
    inner_blocks: Set[int] = set()
    for nested in loop_info.loops:
        if nested.header is not header and loop.contains(nested.header):
            inner_blocks.update(id(b) for b in nested.blocks)

    skipped: Set[int] = set()
    duplicated = 0
    while True:
        merge = _find_merge_block(func, header, region, inner_blocks,
                                  skipped)
        if merge is None:
            if duplicated and obs.active() is not None:
                obs.remark("analysis", "unmerge", func.name,
                           "duplicated merge tails", loop_id=loop.loop_id,
                           duplicated=duplicated,
                           skipped_unprofitable=len(skipped))
            return changed
        if selective:
            from .profitability import merge_is_profitable

            loop_blocks = [b for b in func.blocks if id(b) in region]
            tail = _tail_blocks(header, merge, region)
            if not merge_is_profitable(loop_blocks, merge, tail):
                skipped.add(id(merge))
                continue
        _duplicate_tail(func, header, merge, region, inner_blocks)
        changed = True
        duplicated += 1
        if func.instruction_count() > max_instructions:
            obs.remark("analysis", "unmerge", func.name,
                       "unmerge budget exceeded", loop_id=loop.loop_id,
                       duplicated=duplicated, budget=max_instructions)
            raise UnmergeBudgetExceeded(
                f"loop {loop.loop_id}: unmerged body exceeded "
                f"{max_instructions} instructions")


def _find_merge_block(func: Function, header: BasicBlock, region: Set[int],
                      inner_blocks: Set[int],
                      skipped: Optional[Set[int]] = None
                      ) -> Optional[BasicBlock]:
    """Next unmergeable block: in-region, outside inner loops, >= 2
    in-region predecessors.  Deterministic: first match in reverse
    postorder.  Blocks in ``skipped`` (judged unprofitable by the
    selective mode) are passed over."""
    preds = predecessor_map(func)
    for block in reverse_postorder(func):
        if id(block) not in region or block is header:
            continue
        if id(block) in inner_blocks:
            continue  # Belongs to a nested loop: not ours to unmerge.
        if skipped is not None and id(block) in skipped:
            continue
        in_region_preds = [p for p in preds[block] if id(p) in region]
        if len(in_region_preds) >= 2:
            return block
    return None


def _duplicate_tail(func: Function, header: BasicBlock, merge: BasicBlock,
                    region: Set[int], inner_blocks: Set[int]) -> None:
    """Give each in-region predecessor of ``merge`` its own copy of the tail.

    The tail is every block reachable from ``merge`` inside the region
    without crossing the back edge into ``header``.  The first predecessor
    keeps the original tail; each further predecessor gets a clone.
    """
    preds = predecessor_map(func)
    in_region_preds = [p for p in preds[merge] if id(p) in region]
    assert len(in_region_preds) >= 2

    tail = _tail_blocks(header, merge, region)
    tail_ids = {id(b) for b in tail}

    # Out-of-tail targets (the header and exit blocks) whose phis must gain
    # entries for cloned predecessors.
    boundary_edges: List[Tuple[BasicBlock, BasicBlock]] = []
    for block in tail:
        for succ in block.successors():
            if id(succ) not in tail_ids:
                boundary_edges.append((block, succ))

    keeper, *others = in_region_preds
    for j, pred in enumerate(others, start=1):
        clones, vmap = clone_blocks(func, tail, f"p{j}")
        for original, clone in zip(tail, clones):
            region.add(id(clone))
            if id(original) in inner_blocks:
                inner_blocks.add(id(clone))
        # Rewire this predecessor into its private copy.
        term = pred.terminator
        assert term is not None
        new_merge = vmap[id(merge)]
        assert isinstance(new_merge, BasicBlock)
        term.replace_successor(merge, new_merge)
        # Collapse the cloned merge block's phis to this predecessor's
        # incoming values.
        for original_phi in merge.phis():
            cloned = vmap[id(original_phi)]
            assert isinstance(cloned, PhiInst)
            value = cloned.incoming_for(pred)
            cloned.replace_all_uses_with(value)
            cloned.erase_from_parent()
            vmap[id(original_phi)] = value
        # Deeper cloned blocks may also have had predecessors outside the
        # tail; those edges still target the *original* blocks, so their
        # cloned phis must drop the stale incoming entries.
        clone_ids = {id(c) for c in clones}
        for original in tail[1:]:
            clone = vmap[id(original)]
            assert isinstance(clone, BasicBlock)
            for phi in list(clone.phis()):
                for i in reversed(range(len(phi.incoming_blocks))):
                    if id(phi.incoming_blocks[i]) not in clone_ids:
                        phi.remove_operand(i)
                        del phi.incoming_blocks[i]
                unique = phi.is_trivial()
                if unique is not None:
                    phi.replace_all_uses_with(unique)
                    phi.erase_from_parent()
                    original_key = _clone_source(vmap, phi)
                    if original_key is not None:
                        vmap[original_key] = unique
        # Boundary targets (header / exits) gain phi entries per clone.
        for block, succ in boundary_edges:
            mapped_block = vmap[id(block)]
            assert isinstance(mapped_block, BasicBlock)
            for phi in succ.phis():
                value = phi.incoming_for(block)
                phi.add_incoming(map_value(vmap, value), mapped_block)

    # The original merge keeps only the first predecessor: drop the other
    # incoming entries, then collapse now-trivial phis.
    for phi in list(merge.phis()):
        for pred in others:
            phi.remove_incoming(pred)
        unique = phi.is_trivial()
        if unique is not None:
            phi.replace_all_uses_with(unique)
            phi.erase_from_parent()


def _clone_source(vmap: Dict[int, Value], clone: Value) -> Optional[int]:
    """Find the vmap key whose value is ``clone`` (reverse lookup)."""
    for key, value in vmap.items():
        if value is clone:
            return key
    return None


def _tail_blocks(header: BasicBlock, merge: BasicBlock,
                 region: Set[int]) -> List[BasicBlock]:
    """Blocks reachable from ``merge`` inside the region, not via the header.

    Returned in deterministic DFS discovery order with ``merge`` first.
    """
    order: List[BasicBlock] = []
    seen = {id(merge), id(header)}
    stack = [merge]
    while stack:
        block = stack.pop()
        order.append(block)
        for succ in reversed(block.successors()):
            if id(succ) in seen or id(succ) not in region:
                continue
            seen.add(id(succ))
            stack.append(succ)
    return order


class UnmergePass:
    """Unmerge one specific loop (the paper's *unmerge* config)."""

    name = "unmerge"

    def __init__(self, loop_id: str, max_instructions: int = 60_000) -> None:
        self.loop_id = loop_id
        self.max_instructions = max_instructions

    def run(self, func: Function) -> bool:
        loop_info = LoopInfo.compute(func)
        loop = loop_info.by_id(self.loop_id)
        if loop is None:
            obs.remark("missed", self.name, func.name, "loop not found",
                       loop_id=self.loop_id)
            return False
        claimed = set(func.attributes.get("uu_claimed_loops", ()))
        claimed.add(self.loop_id)
        func.attributes["uu_claimed_loops"] = claimed
        try:
            changed = unmerge_loop(func, loop, self.max_instructions)
        except UnmergeBudgetExceeded:
            return True
        if changed:
            obs.remark("applied", self.name, func.name, "unmerged loop",
                       loop_id=self.loop_id)
        return changed
