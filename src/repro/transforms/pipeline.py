"""Optimization pipelines: the five configurations of the paper's Section IV-B.

* ``baseline``   — the stock -O3-like pipeline.
* ``unroll``     — baseline + plain unrolling of one loop (no unmerge).
* ``unmerge``    — baseline + unmerging of one loop (unroll factor 1).
* ``uu``         — baseline + unroll-and-unmerge of one loop.
* ``uu_heuristic`` — baseline + heuristic u&u over all loops.

All transforms are placed *early* in the pipeline, exactly as the paper
argues ("a late position in the pipeline is ineffective"), so that the full
cleanup battery — GVN with branch facts, SCCP, instcombine, load
elimination, SimplifyCFG, DCE — runs over the duplicated code, and the late
predication stage turns remaining small diamonds into selects (the PTX
``selp`` forms of the baseline).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ir.module import Module
from .dce import DeadCodeElimination
from .gvn import GlobalValueNumbering
from .heuristic import HeuristicParams, HeuristicUU
from .instcombine import InstCombine
from .licm import LoopInvariantCodeMotion
from .load_elim import LoadElimination
from .pass_manager import (CompileTimeout, FixpointPassManager, PassManager,
                           PassStatistics)
from .predication import Predication
from .sccp import SparseConditionalConstantPropagation
from .simplifycfg import SimplifyCFG
from .tuned import TunedUU
from .unmerge import UnmergePass
from .unroll import BaselineUnroll, UnrollPass
from .uu import UnrollAndUnmerge

#: ``tuned`` replays persisted per-loop decisions from the empirical
#: autotuner (:mod:`repro.tune`); ``predicted`` replays decisions the
#: similarity index transferred from the nearest tuned kernels
#: (:mod:`repro.similarity`).  Both degrade to the static heuristic when
#: no decisions are available, so they are usable unconditionally.
CONFIGS = ("baseline", "unroll", "unmerge", "uu", "uu_heuristic", "tuned",
           "predicted")


@dataclass
class CompileResult:
    """Outcome of one compilation: timing plus final module statistics."""

    module: Module
    config: str
    compile_seconds: float
    code_size: int
    instruction_count: int
    pass_stats: PassStatistics
    heuristic_decisions: list = field(default_factory=list)
    #: True when the pipeline hit its compile budget (the paper's ccs
    #: timeouts); the module is valid but only partially optimized.
    timed_out: bool = False


def cleanup_passes(branch_facts: bool = True) -> List:
    """Fresh instances of the mid-pipeline cleanup battery (fixpointed)."""
    return [
        InstCombine(),
        GlobalValueNumbering(branch_facts=branch_facts),
        LoopInvariantCodeMotion(),
        SparseConditionalConstantPropagation(),
        SimplifyCFG(),
        LoadElimination(),
        DeadCodeElimination(),
    ]


# Backwards-compatible alias (pre-fuzz name).
_cleanup_passes = cleanup_passes


def transform_passes(config: str, *, loop_id: Optional[str] = None,
                     factor: int = 1,
                     heuristic: Optional[HeuristicParams] = None,
                     max_instructions: int = 200_000,
                     tuned: Optional[List] = None) -> List:
    """The experimental transform stage for ``config`` (possibly empty).

    ``tuned`` carries the per-loop decisions of the ``tuned`` config
    (``repro.tune.store.TunedLoopDecision`` rows); ``None`` means no
    usable tuned file was resolved and the config falls back to the
    static heuristic (the caller is responsible for warning).
    """
    if config == "baseline":
        return []
    if config == "unroll":
        if loop_id is None:
            raise ValueError("unroll config requires a loop id")
        return [UnrollPass(loop_id, factor)]
    if config == "unmerge":
        if loop_id is None:
            raise ValueError("unmerge config requires a loop id")
        return [UnmergePass(loop_id, max_instructions)]
    if config == "uu":
        if loop_id is None:
            raise ValueError("uu config requires a loop id")
        return [UnrollAndUnmerge(loop_id, factor, max_instructions)]
    if config == "uu_heuristic":
        return [HeuristicUU(heuristic or HeuristicParams(),
                            max_instructions)]
    if config in ("tuned", "predicted"):
        if tuned is None:
            # Graceful fallback: no (usable) tuned file for this module,
            # or no usable similarity-index evidence for ``predicted``.
            return [HeuristicUU(heuristic or HeuristicParams(),
                                max_instructions)]
        return [TunedUU(tuned, max_instructions)]
    raise ValueError(f"unknown configuration {config!r}")


def late_passes() -> List:
    """Fresh instances of the late pipeline stage.

    Stock unroller (skips loops the transform claimed), light cleanup,
    then late if-conversion producing the baseline's selp forms.
    Deliberately *no* GVN/load-elim here: LLVM's late pipeline does not
    re-run the branch-fact machinery over freshly unrolled code either —
    which is exactly why plain unrolling misses the cross-iteration
    redundancies u&u exposes (the paper's RQ3 contrast).
    """
    return [
        BaselineUnroll(),
        InstCombine(),
        SparseConditionalConstantPropagation(),
        SimplifyCFG(),
        DeadCodeElimination(),
        Predication(),
        SimplifyCFG(),
        InstCombine(),
        DeadCodeElimination(),
    ]


def build_pipeline(config: str, *, loop_id: Optional[str] = None,
                   factor: int = 1,
                   heuristic: Optional[HeuristicParams] = None,
                   max_instructions: int = 200_000,
                   branch_facts: bool = True,
                   verify_each: bool = False,
                   tuned: Optional[List] = None) -> PassManager:
    """Assemble the pass pipeline for one configuration.

    ``loop_id``/``factor`` select the target loop for the per-loop configs
    (``unroll``, ``unmerge``, ``uu``); ``heuristic`` parameterises
    ``uu_heuristic``; ``tuned`` carries the per-loop decisions of the
    ``tuned`` config.  ``branch_facts=False`` ablates GVN's
    provenance-fact machinery (for the ablation benchmarks).
    """
    if config not in CONFIGS:
        raise ValueError(f"unknown configuration {config!r}")

    # The experimental transform, placed early (paper Section IV-B).
    passes: List = [SimplifyCFG()]
    passes.extend(transform_passes(config, loop_id=loop_id, factor=factor,
                                   heuristic=heuristic,
                                   max_instructions=max_instructions,
                                   tuned=tuned))

    # Mid-pipeline cleanup to a fixed point.
    cleanup = FixpointPassManager(cleanup_passes(branch_facts),
                                  verify_each=verify_each)

    manager = PassManager(verify_each=verify_each)
    for p in passes:
        manager.add(p)
    manager.add(_NestedManager("cleanup", cleanup))
    for p in late_passes():
        manager.add(p)
    return manager


class _NestedManager:
    """Adapts a PassManager to the FunctionPass protocol."""

    def __init__(self, name: str, manager: PassManager) -> None:
        self.name = name
        self.manager = manager

    def run(self, func) -> bool:
        changed = self.manager.run_function(func)
        return changed


def compile_module(module: Module, config: str, *,
                   loop_id: Optional[str] = None, factor: int = 1,
                   heuristic: Optional[HeuristicParams] = None,
                   max_instructions: int = 60_000,
                   timeout_seconds: Optional[float] = None,
                   branch_facts: bool = True,
                   verify_each: bool = False,
                   tuned: Optional[List] = None) -> CompileResult:
    """Run the configured pipeline over ``module`` and measure it.

    The returned compile time is real wall-clock of the pass pipeline —
    the quantity Figure 6c reports relative to baseline.  When
    ``timeout_seconds`` elapses mid-pipeline the compilation is abandoned
    (``timed_out=True``), mirroring the paper's per-loop compile timeouts.
    """
    pipeline = build_pipeline(config, loop_id=loop_id, factor=factor,
                              heuristic=heuristic,
                              max_instructions=max_instructions,
                              branch_facts=branch_facts,
                              verify_each=verify_each,
                              tuned=tuned)
    timed_out = False
    start = time.perf_counter()
    if timeout_seconds is not None:
        deadline = start + timeout_seconds
        pipeline.deadline = deadline
        for p in pipeline.passes:
            if isinstance(p, _NestedManager):
                p.manager.deadline = deadline
    try:
        pipeline.run(module)
    except CompileTimeout:
        timed_out = True
    elapsed = time.perf_counter() - start

    decisions = []
    for p in pipeline.passes:
        if isinstance(p, (HeuristicUU, TunedUU)):
            decisions = p.decisions
    return CompileResult(
        module=module,
        config=config,
        compile_seconds=elapsed,
        code_size=module.code_size(),
        instruction_count=module.instruction_count(),
        pass_stats=pipeline.stats,
        heuristic_decisions=decisions,
        timed_out=timed_out,
    )
