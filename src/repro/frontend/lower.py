"""Lowering from the structured AST to SSA IR.

SSA construction follows Braun et al., "Simple and Efficient Construction of
Static Single Assignment Form" (CC 2013): variables are written per block,
reads recurse through predecessors, phis are created lazily in unsealed
blocks and pruned when trivial.  Structured control flow keeps sealing
straightforward: only loop headers are ever temporarily unsealed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from ..ir.block import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.constants import ConstantFloat, ConstantInt, const
from ..ir.function import Function
from ..ir.instructions import PhiInst
from ..ir.module import Module
from ..ir.types import (F32, F64, I1, I32, I64, FloatType, FunctionType,
                        IntType, PointerType, Type, VOID, parse_type)
from ..ir.values import Value
from . import ast


class LoweringError(Exception):
    """Raised on malformed kernel ASTs (undefined variables, type clashes)."""


class _SSABuilder:
    """Braun-style on-the-fly SSA construction state for one function."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.current_def: Dict[str, Dict[int, Value]] = {}
        self.incomplete_phis: Dict[int, Dict[str, PhiInst]] = {}
        self.sealed: Set[int] = set()
        self.var_types: Dict[str, Type] = {}

    def declare(self, name: str, type_: Type) -> None:
        existing = self.var_types.get(name)
        if existing is None:
            self.var_types[name] = type_
        elif existing is not type_:
            raise LoweringError(
                f"variable '{name}' re-assigned with type {type_!r}, "
                f"declared {existing!r}")

    def write(self, name: str, block: BasicBlock, value: Value) -> None:
        self.current_def.setdefault(name, {})[id(block)] = value

    def read(self, name: str, block: BasicBlock) -> Value:
        defs = self.current_def.get(name)
        if defs is not None and id(block) in defs:
            return defs[id(block)]
        return self._read_recursive(name, block)

    def _read_recursive(self, name: str, block: BasicBlock) -> Value:
        type_ = self.var_types.get(name)
        if type_ is None:
            raise LoweringError(f"read of undeclared variable '{name}'")
        if id(block) not in self.sealed:
            phi = PhiInst(type_)
            phi.name = self.func.unique_name(name)
            block.insert(block.first_non_phi_index(), phi)
            self.incomplete_phis.setdefault(id(block), {})[name] = phi
            value: Value = phi
        else:
            preds = block.predecessors()
            if len(preds) == 1:
                value = self.read(name, preds[0])
            elif not preds:
                raise LoweringError(
                    f"variable '{name}' read before assignment")
            else:
                phi = PhiInst(type_)
                phi.name = self.func.unique_name(name)
                block.insert(block.first_non_phi_index(), phi)
                self.write(name, block, phi)
                value = self._add_phi_operands(name, phi, block)
        self.write(name, block, value)
        return value

    def _add_phi_operands(self, name: str, phi: PhiInst,
                          block: BasicBlock) -> Value:
        for pred in block.predecessors():
            phi.add_incoming(self.read(name, pred), pred)
        return self._try_remove_trivial(phi)

    def _try_remove_trivial(self, phi: PhiInst) -> Value:
        unique = phi.is_trivial()
        if unique is None:
            return phi
        phi_users = [u for u in phi.users()
                     if isinstance(u, PhiInst) and u is not phi]
        phi.replace_all_uses_with(unique)
        # Fix any stored definitions pointing at the removed phi.
        for defs in self.current_def.values():
            for key, value in defs.items():
                if value is phi:
                    defs[key] = unique
        phi.erase_from_parent()
        for user in phi_users:
            if user.parent is not None:
                self._try_remove_trivial(user)
        return unique

    def seal(self, block: BasicBlock) -> None:
        if id(block) in self.sealed:
            return
        for name, phi in self.incomplete_phis.pop(id(block), {}).items():
            self._add_phi_operands(name, phi, block)
        self.sealed.add(id(block))


class _KernelLowering:
    """Lowers one KernelDef into a function of a module."""

    def __init__(self, module: Module, kernel: ast.KernelDef) -> None:
        self.module = module
        self.kernel = kernel
        param_types = tuple(parse_type(p.type_) for p in kernel.params)
        ftype = FunctionType(parse_type(kernel.ret_type), param_types)
        self.func = module.add_function(
            kernel.name, ftype, [p.name for p in kernel.params])
        restrict = tuple(p.name for p in kernel.params if p.restrict)
        if restrict:
            self.func.attributes["restrict_args"] = restrict
        self.ssa = _SSABuilder(self.func)
        self.builder = IRBuilder()
        self.params: Dict[str, Value] = {
            p.name: arg for p, arg in zip(kernel.params, self.func.args)}
        self.break_targets: List[BasicBlock] = []
        self.loop_counter = 0
        self.pragmas: Dict[str, str] = {}

    # -- top level ----------------------------------------------------------
    def lower(self) -> Function:
        entry = self.func.add_block("entry")
        self.ssa.seal(entry)
        self.builder.position_at_end(entry)
        terminated = self._lower_body(self.kernel.body)
        if not terminated:
            if self.func.ftype.ret is VOID:
                self.builder.ret()
            else:
                raise LoweringError(
                    f"@{self.kernel.name}: missing return of "
                    f"{self.func.ftype.ret!r}")
        if self.pragmas:
            self.func.attributes["loop_pragmas"] = dict(self.pragmas)
        return self.func

    def _lower_body(self, stmts: List[ast.Stmt]) -> bool:
        """Lower statements; returns True if control flow terminated."""
        for stmt in stmts:
            if self._lower_stmt(stmt):
                return True
        return False

    # -- statements -----------------------------------------------------------
    def _lower_stmt(self, stmt: ast.Stmt) -> bool:
        if isinstance(stmt, ast.Assign):
            value = self._expr(stmt.expr)
            existing = self.ssa.var_types.get(stmt.name)
            if existing is not None and existing is not value.type:
                value = self._coerce_to(value, existing)
            self.ssa.declare(stmt.name, value.type)
            self.ssa.write(stmt.name, self.builder.block, value)
            return False
        if isinstance(stmt, ast.Store):
            ptr = self._address(stmt.base, stmt.index)
            elem = ptr.type.pointee  # type: ignore[attr-defined]
            value = self._coerce_to(self._expr(stmt.expr), elem)
            self.builder.store(value, ptr)
            return False
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt)
        if isinstance(stmt, ast.While):
            return self._lower_while(stmt)
        if isinstance(stmt, ast.For):
            return self._lower_for(stmt)
        if isinstance(stmt, ast.Return):
            if stmt.expr is None:
                self.builder.ret()
            else:
                value = self._coerce_to(self._expr(stmt.expr),
                                        self.func.ftype.ret)
                self.builder.ret(value)
            return True
        if isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr)
            return False
        if isinstance(stmt, ast.Break):
            if not self.break_targets:
                raise LoweringError("break outside loop")
            self.builder.br(self.break_targets[-1])
            return True
        raise LoweringError(f"unknown statement {stmt!r}")

    def _lower_if(self, stmt: ast.If) -> bool:
        cond = self._bool(self._expr(stmt.cond))
        then_block = self.func.add_block("if.then")
        merge_block = self.func.add_block("if.end")
        if stmt.els:
            else_block = self.func.add_block("if.else")
        else:
            else_block = merge_block
        self.builder.cond_br(cond, then_block, else_block)

        self.ssa.seal(then_block)
        self.builder.position_at_end(then_block)
        then_done = self._lower_body(stmt.then)
        if not then_done:
            self.builder.br(merge_block)

        else_done = False
        if stmt.els:
            self.ssa.seal(else_block)
            self.builder.position_at_end(else_block)
            else_done = self._lower_body(stmt.els)
            if not else_done:
                self.builder.br(merge_block)

        self.ssa.seal(merge_block)
        if then_done and (else_done or not stmt.els):
            if not stmt.els:
                # Fallthrough edge from the condition still reaches merge.
                self.builder.position_at_end(merge_block)
                return False
        if then_done and else_done:
            # Merge block unreachable; drop it.
            self.func.remove_block(merge_block)
            return True
        self.builder.position_at_end(merge_block)
        return False

    def _lower_while(self, stmt: ast.While) -> bool:
        self._note_loop()
        header = self.func.add_block("while.cond")
        body = self.func.add_block("while.body")
        exit_block = self.func.add_block("while.end")
        self.builder.br(header)

        # Header is unsealed until the latch edge exists.
        self.builder.position_at_end(header)
        cond = self._bool(self._expr(stmt.cond))
        self.builder.cond_br(cond, body, exit_block)

        self.ssa.seal(body)
        self.builder.position_at_end(body)
        self.break_targets.append(exit_block)
        body_done = self._lower_body(stmt.body)
        self.break_targets.pop()
        if not body_done:
            self.builder.br(header)
        self.ssa.seal(header)
        self.ssa.seal(exit_block)
        self.builder.position_at_end(exit_block)
        return False

    def _lower_for(self, stmt: ast.For) -> bool:
        start = self._expr(stmt.start)
        self.ssa.declare(stmt.var, start.type)
        self.ssa.write(stmt.var, self.builder.block, start)
        cond = ast.Cmp("<", ast.Var(stmt.var), stmt.stop)
        increment = ast.Assign(
            stmt.var, ast.BinOp("+", ast.Var(stmt.var), stmt.step))
        return self._lower_while(ast.While(cond, stmt.body + [increment]))

    def _note_loop(self) -> None:
        pragma = self.kernel.loop_pragmas.get(self.loop_counter)
        if pragma is not None:
            self.pragmas[f"{self.kernel.name}:{self.loop_counter}"] = pragma
        self.loop_counter += 1

    # -- expressions -----------------------------------------------------------
    def _expr(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.Var):
            if expr.name in self.params:
                return self.params[expr.name]
            return self.ssa.read(expr.name, self.builder.block)
        if isinstance(expr, ast.Lit):
            return self._literal(expr, None)
        if isinstance(expr, ast.BinOp):
            return self._binop(expr)
        if isinstance(expr, ast.Cmp):
            return self._cmp(expr)
        if isinstance(expr, ast.And):
            lhs = self._bool(self._expr(expr.lhs))
            rhs = self._bool(self._expr(expr.rhs))
            return self.builder.and_(lhs, rhs)
        if isinstance(expr, ast.Or):
            lhs = self._bool(self._expr(expr.lhs))
            rhs = self._bool(self._expr(expr.rhs))
            return self.builder.or_(lhs, rhs)
        if isinstance(expr, ast.Not):
            operand = self._bool(self._expr(expr.operand))
            return self.builder.xor(operand, const(I1, 1))
        if isinstance(expr, ast.Index):
            ptr = self._address(expr.base, expr.index)
            return self.builder.load(ptr)
        if isinstance(expr, ast.AddrOf):
            return self._address(expr.base, expr.index)
        if isinstance(expr, ast.Call):
            args = [self._expr(a) for a in expr.args]
            return self.builder.call(expr.name, args)
        if isinstance(expr, ast.Cast):
            return self._coerce_to(self._expr(expr.operand),
                                   parse_type(expr.to_type))
        raise LoweringError(f"unknown expression {expr!r}")

    def _literal(self, lit: ast.Lit, context: Optional[Type]) -> Value:
        if lit.type_ is not None:
            return const(parse_type(lit.type_), lit.value)
        if context is not None and not context.is_pointer:
            return const(context, lit.value)
        if isinstance(lit.value, float):
            return const(F64, lit.value)
        return const(I64, lit.value)

    def _binop(self, expr: ast.BinOp) -> Value:
        lhs, rhs = self._operand_pair(expr.lhs, expr.rhs)
        type_ = lhs.type
        op = expr.op
        if isinstance(type_, FloatType):
            table = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv",
                     "%": "frem"}
            if op not in table:
                raise LoweringError(f"operator {op} not valid on floats")
            return self.builder.binary(table[op], lhs, rhs)
        table = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv",
                 "%": "srem", "&": "and", "|": "or", "^": "xor",
                 "<<": "shl", ">>": "ashr"}
        return self.builder.binary(table[op], lhs, rhs)

    def _cmp(self, expr: ast.Cmp) -> Value:
        lhs, rhs = self._operand_pair(expr.lhs, expr.rhs)
        if isinstance(lhs.type, FloatType):
            table = {"<": "olt", "<=": "ole", ">": "ogt", ">=": "oge",
                     "==": "oeq", "!=": "one"}
            return self.builder.fcmp(table[expr.op], lhs, rhs)
        table = {"<": "slt", "<=": "sle", ">": "sgt", ">=": "sge",
                 "==": "eq", "!=": "ne"}
        return self.builder.icmp(table[expr.op], lhs, rhs)

    def _operand_pair(self, lhs_ast: ast.Expr,
                      rhs_ast: ast.Expr) -> Tuple[Value, Value]:
        """Lower two operands with C-like implicit conversions."""
        lhs_lit = isinstance(lhs_ast, ast.Lit) and lhs_ast.type_ is None
        rhs_lit = isinstance(rhs_ast, ast.Lit) and rhs_ast.type_ is None
        if lhs_lit and not rhs_lit:
            rhs = self._expr(rhs_ast)
            lhs = self._literal(lhs_ast, rhs.type)  # type: ignore[arg-type]
        elif rhs_lit and not lhs_lit:
            lhs = self._expr(lhs_ast)
            rhs = self._literal(rhs_ast, lhs.type)  # type: ignore[arg-type]
        else:
            lhs = self._expr(lhs_ast)
            rhs = self._expr(rhs_ast)
        if lhs.type is rhs.type:
            return lhs, rhs
        # Implicit conversions: int -> float, narrow int -> wide int.
        if isinstance(lhs.type, FloatType) and isinstance(rhs.type, IntType):
            return lhs, self.builder.sitofp(rhs, lhs.type)
        if isinstance(rhs.type, FloatType) and isinstance(lhs.type, IntType):
            return self.builder.sitofp(lhs, rhs.type), rhs
        if isinstance(lhs.type, IntType) and isinstance(rhs.type, IntType):
            if lhs.type.bits < rhs.type.bits:
                return self.builder.sext(lhs, rhs.type), rhs
            return lhs, self.builder.sext(rhs, lhs.type)
        if isinstance(lhs.type, FloatType) and isinstance(rhs.type, FloatType):
            if lhs.type.bits < rhs.type.bits:
                return self.builder.fpext(lhs, rhs.type), rhs
            return lhs, self.builder.fptrunc(rhs, lhs.type)
        raise LoweringError(
            f"incompatible operand types {lhs.type!r} vs {rhs.type!r}")

    def _coerce_to(self, value: Value, type_: Type) -> Value:
        if value.type is type_:
            return value
        if isinstance(type_, FloatType) and isinstance(value.type, IntType):
            return self.builder.sitofp(value, type_)
        if isinstance(type_, IntType) and isinstance(value.type, FloatType):
            return self.builder.fptosi(value, type_)
        if isinstance(type_, IntType) and isinstance(value.type, IntType):
            if value.type.bits < type_.bits:
                if value.type.bits == 1:
                    return self.builder.zext(value, type_)
                return self.builder.sext(value, type_)
            return self.builder.trunc(value, type_)
        if isinstance(type_, FloatType) and isinstance(value.type, FloatType):
            if value.type.bits < type_.bits:
                return self.builder.fpext(value, type_)
            return self.builder.fptrunc(value, type_)
        raise LoweringError(
            f"cannot convert {value.type!r} to {type_!r}")

    def _bool(self, value: Value) -> Value:
        if value.type is I1:
            return value
        if isinstance(value.type, IntType):
            return self.builder.icmp("ne", value, const(value.type, 0))
        if isinstance(value.type, FloatType):
            return self.builder.fcmp("une", value, const(value.type, 0.0))
        raise LoweringError(f"cannot use {value.type!r} as a condition")

    def _address(self, base: str, index: ast.Expr) -> Value:
        if base in self.params:
            ptr = self.params[base]
        elif base in self.module.globals:
            ptr = self.module.globals[base]
        else:
            # Pointer-typed local variable (e.g. AddrOf assigned earlier).
            ptr = self.ssa.read(base, self.builder.block)
        if not isinstance(ptr.type, PointerType):
            raise LoweringError(f"'{base}' is not a pointer")
        idx = self._coerce_to(self._expr(index), I64)
        return self.builder.gep(ptr, idx)


def lower_kernel(module: Module, kernel: ast.KernelDef) -> Function:
    """Lower one kernel definition into ``module``."""
    return _KernelLowering(module, kernel).lower()


def lower_kernels(kernels: List[ast.KernelDef],
                  module_name: str = "kernels") -> Module:
    """Lower several kernels into a fresh module."""
    module = Module(module_name)
    for kernel in kernels:
        lower_kernel(module, kernel)
    return module
