"""Structured kernel frontend: AST + Braun-style SSA lowering."""

from .ast import (AddrOf, And, Assign, BinOp, Break, Call, Cast, Cmp, Expr,
                  ExprStmt, For, GlobalTid, If, Index, KernelDef, Lit, Not,
                  Or, Param, Return, Stmt, Store, V, Var, While)
from .lower import LoweringError, lower_kernel, lower_kernels

__all__ = [
    "Expr", "Var", "V", "Lit", "BinOp", "Cmp", "And", "Or", "Not", "Index",
    "AddrOf", "Call", "Cast", "GlobalTid",
    "Stmt", "Assign", "Store", "If", "While", "For", "Return", "ExprStmt",
    "Break",
    "Param", "KernelDef",
    "lower_kernel", "lower_kernels", "LoweringError",
]
