"""Structured mini-language for writing GPU kernels.

The benchmark kernels (Section IV's 16 HeCBench analogs) are written in
this small AST and lowered to SSA IR by :mod:`repro.frontend.lower`.  The
language is CUDA-kernel-shaped: scalar variables, typed pointer parameters,
``if``/``while``/``for``, array loads/stores, GPU intrinsics.

Expressions support Python operator overloading, so kernels read close to
the paper's listings::

    Assign("mid", V("lower") + V("length") / 2),
    If(Index("A", V("mid")) > V("quarry"),
       [Assign("upper", V("mid"))],
       [Assign("lower", V("mid"))]),
    Assign("length", V("upper") - V("lower")),
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base expression; supports operator overloading."""

    def _wrap(self, other) -> "Expr":
        if isinstance(other, Expr):
            return other
        return Lit(other)

    def __add__(self, other):
        return BinOp("+", self, self._wrap(other))

    def __radd__(self, other):
        return BinOp("+", self._wrap(other), self)

    def __sub__(self, other):
        return BinOp("-", self, self._wrap(other))

    def __rsub__(self, other):
        return BinOp("-", self._wrap(other), self)

    def __mul__(self, other):
        return BinOp("*", self, self._wrap(other))

    def __rmul__(self, other):
        return BinOp("*", self._wrap(other), self)

    def __truediv__(self, other):
        return BinOp("/", self, self._wrap(other))

    def __rtruediv__(self, other):
        return BinOp("/", self._wrap(other), self)

    def __mod__(self, other):
        return BinOp("%", self, self._wrap(other))

    def __and__(self, other):
        return BinOp("&", self, self._wrap(other))

    def __or__(self, other):
        return BinOp("|", self, self._wrap(other))

    def __xor__(self, other):
        return BinOp("^", self, self._wrap(other))

    def __lshift__(self, other):
        return BinOp("<<", self, self._wrap(other))

    def __rshift__(self, other):
        return BinOp(">>", self, self._wrap(other))

    def __lt__(self, other):
        return Cmp("<", self, self._wrap(other))

    def __le__(self, other):
        return Cmp("<=", self, self._wrap(other))

    def __gt__(self, other):
        return Cmp(">", self, self._wrap(other))

    def __ge__(self, other):
        return Cmp(">=", self, self._wrap(other))

    def __eq__(self, other):  # type: ignore[override]
        return Cmp("==", self, self._wrap(other))

    def __ne__(self, other):  # type: ignore[override]
        return Cmp("!=", self, self._wrap(other))

    def __neg__(self):
        return BinOp("-", Lit(0), self)

    def __hash__(self):  # Nodes are identity-hashed despite __eq__ overload.
        return id(self)


@dataclass(frozen=True, eq=False)
class Var(Expr):
    """Reference to a scalar variable or parameter."""

    name: str


def V(name: str) -> Var:
    """Shorthand constructor for :class:`Var`."""
    return Var(name)


@dataclass(frozen=True, eq=False)
class Lit(Expr):
    """Literal; type inferred from context (or forced via ``type_``)."""

    value: Union[int, float]
    type_: Optional[str] = None  # "i32", "i64", "f32", "f64"


@dataclass(frozen=True, eq=False)
class BinOp(Expr):
    """Arithmetic/bitwise operation; signedness follows C semantics."""

    op: str  # + - * / % & | ^ << >>
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True, eq=False)
class Cmp(Expr):
    """Comparison producing a boolean."""

    op: str  # < <= > >= == !=
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True, eq=False)
class And(Expr):
    """Non-short-circuit logical and (both sides evaluated)."""

    lhs: Expr
    rhs: Expr


@dataclass(frozen=True, eq=False)
class Or(Expr):
    """Non-short-circuit logical or (both sides evaluated)."""

    lhs: Expr
    rhs: Expr


@dataclass(frozen=True, eq=False)
class Not(Expr):
    operand: Expr


@dataclass(frozen=True, eq=False)
class Index(Expr):
    """Array load ``base[index]`` (base is a pointer parameter or global)."""

    base: str
    index: Expr


@dataclass(frozen=True, eq=False)
class AddrOf(Expr):
    """Pointer arithmetic ``&base[index]`` without loading."""

    base: str
    index: Expr


@dataclass(frozen=True, eq=False)
class Call(Expr):
    """Intrinsic call (``sqrt``, ``min``, ``tid.x``...)."""

    name: str
    args: Tuple[Expr, ...] = ()


@dataclass(frozen=True, eq=False)
class Cast(Expr):
    """Explicit conversion to a named type."""

    to_type: str
    operand: Expr


def GlobalTid() -> Expr:
    """``threadIdx.x + blockIdx.x * blockDim.x``."""
    return Call("tid.x") + Call("ctaid.x") * Call("ntid.x")


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt:
    """Base statement."""


@dataclass(eq=False)
class Assign(Stmt):
    """``name = expr`` — declares the variable on first assignment."""

    name: str
    expr: Expr


@dataclass(eq=False)
class Store(Stmt):
    """``base[index] = expr``."""

    base: str
    index: Expr
    expr: Expr


@dataclass(eq=False)
class If(Stmt):
    cond: Expr
    then: List[Stmt]
    els: List[Stmt] = field(default_factory=list)


@dataclass(eq=False)
class While(Stmt):
    cond: Expr
    body: List[Stmt]


@dataclass(eq=False)
class For(Stmt):
    """``for (var = start; var < stop; var += step)`` (signed compare)."""

    var: str
    start: Expr
    stop: Expr
    body: List[Stmt]
    step: Expr = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.step is None:
            self.step = Lit(1)


@dataclass(eq=False)
class Return(Stmt):
    expr: Optional[Expr] = None


@dataclass(eq=False)
class ExprStmt(Stmt):
    """Evaluate an expression for its effects (e.g. ``syncthreads``)."""

    expr: Expr


@dataclass(eq=False)
class Break(Stmt):
    """Break out of the innermost loop."""


# ---------------------------------------------------------------------------
# Kernel definition
# ---------------------------------------------------------------------------

@dataclass(eq=False)
class Param:
    """Kernel parameter: scalar or pointer, optionally ``__restrict__``."""

    name: str
    type_: str          # e.g. "f64*", "i64"
    restrict: bool = False


@dataclass(eq=False)
class KernelDef:
    """One kernel (or device function): signature plus a statement body."""

    name: str
    params: List[Param]
    body: List[Stmt]
    ret_type: str = "void"
    #: loop pragmas by source order: e.g. {0: "unroll"} marks the first
    #: loop encountered during lowering (the paper's pragma filter).
    loop_pragmas: dict = field(default_factory=dict)
