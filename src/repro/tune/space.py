"""Candidate enumeration with cost-model pruning.

The per-loop search space is {unroll factor u in 1..u_max} x {unmerge
on/off} minus the identity (u=1, unmerge off).  Every candidate maps onto
one of the paper's *existing* per-loop pipeline configurations —

* ``unmerge on,  u >= 2`` -> ``uu``      (unroll-and-unmerge),
* ``unmerge on,  u == 1`` -> ``unmerge`` (pure unmerging),
* ``unmerge off, u >= 2`` -> ``unroll``  (plain unrolling)

— so measuring a candidate is measuring an ordinary sweep cell: the
fan-out goes through :class:`~repro.harness.parallel.ParallelRunner` and
every measurement lands in (and is warm-served from) the persistent cell
cache.

Pruning reuses the paper's own cost model *as a feasibility cap*, not as
the decision procedure: a candidate whose predicted post-transform size
``f(p, s, u)`` (unmerging) or ``s * u`` (plain unrolling) exceeds a hard
cap is never compiled.  The cap defaults to well above the heuristic's
``c = 1024`` — the whole point of the empirical search is to explore past
the static threshold — but still bounds compile-time blowup.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ..analysis.cost_model import loop_size
from ..analysis.loops import LoopInfo
from ..analysis.paths import count_paths, estimate_unmerged_size
from ..ir.module import Module
from .store import TunedLoopDecision


@dataclasses.dataclass
class TuneParams:
    """Tunables of the empirical search."""

    #: Largest unroll factor tried per loop (matches the paper's u_max).
    u_max: int = 8
    #: Heuristic budgets ``c`` whose whole-function decision sets enter the
    #: combined round.  Must include the default 1024 so the winner is
    #: never worse than the static heuristic.
    budgets: Tuple[int, ...] = (256, 1024, 4096)
    #: Successive-halving rounds: workload-geometry divisors, coarsest
    #: first, ending at 1 (full size).  Each round halves the per-loop
    #: survivor set; only full-size measurements pick winners.
    scales: Tuple[int, ...] = (4, 1)
    #: Hard cap on the cost-model-predicted post-transform size; larger
    #: candidates are pruned without compiling.
    size_cap: int = 8192
    #: Max per-loop candidates admitted to measurement (None = all).
    #: Truncation follows canonical enumeration order — never completion
    #: order — so a capped search stays deterministic across ``-j``.
    budget: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class Candidate:
    """One per-loop search point."""

    loop_id: str
    factor: int
    unmerge: bool

    @property
    def key(self) -> str:
        """Canonical, sortable identity (the deterministic tie-breaker)."""
        return (f"{self.loop_id}|u={self.factor}"
                f"|unmerge={'on' if self.unmerge else 'off'}")

    @property
    def config(self) -> str:
        """The existing pipeline configuration that measures this point."""
        if self.unmerge:
            return "uu" if self.factor >= 2 else "unmerge"
        return "unroll"

    @property
    def decision(self) -> TunedLoopDecision:
        return TunedLoopDecision(self.loop_id, self.factor, self.unmerge)


@dataclasses.dataclass(frozen=True)
class LoopFacts:
    """Static facts about one loop (inputs to the cost model)."""

    loop_id: str
    paths: int
    size: int
    #: loop_ids of loops nested (transitively) inside this one; used to
    #: enforce the paper's nesting rule when composing per-loop winners.
    descendants: Tuple[str, ...]


def loop_facts(module: Module) -> List[LoopFacts]:
    """Deterministic per-loop facts for every loop in ``module``."""
    facts: List[LoopFacts] = []
    for func in module.functions.values():
        info = LoopInfo.compute(func)
        for loop in info.loops:
            stack = list(loop.children)
            descendants: List[str] = []
            while stack:
                child = stack.pop()
                descendants.append(child.loop_id)
                stack.extend(child.children)
            facts.append(LoopFacts(loop.loop_id,
                                   count_paths(loop, info),
                                   loop_size(loop),
                                   tuple(sorted(descendants))))
    return facts


def predicted_size(facts: LoopFacts, candidate: Candidate) -> int:
    """Cost-model size estimate of the transformed loop."""
    if candidate.unmerge:
        return estimate_unmerged_size(facts.paths, facts.size,
                                      candidate.factor)
    return facts.size * candidate.factor


def enumerate_candidates(facts: List[LoopFacts], params: TuneParams
                         ) -> Tuple[List[Candidate],
                                    List[Tuple[Candidate, int]]]:
    """``(admitted, pruned)`` in canonical enumeration order.

    ``pruned`` pairs each rejected candidate with its predicted size (for
    the audit trail); the identity point (u=1, no unmerge) is the implicit
    do-nothing alternative and is never enumerated.
    """
    admitted: List[Candidate] = []
    pruned: List[Tuple[Candidate, int]] = []
    for loop in facts:
        for factor in range(1, params.u_max + 1):
            for unmerge in (True, False):
                if factor == 1 and not unmerge:
                    continue  # identity
                candidate = Candidate(loop.loop_id, factor, unmerge)
                predicted = predicted_size(loop, candidate)
                if predicted > params.size_cap:
                    pruned.append((candidate, predicted))
                else:
                    admitted.append(candidate)
    return admitted, pruned
