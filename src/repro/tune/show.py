"""``repro tune show`` — tuned decisions next to the static heuristic's.

A per-loop side-by-side of what the empirical search persisted versus
what the paper's heuristic (``f(p, s, u) < c``) would pick, plus the
measurements that justify the winner.  Rendering is pure text over the
persisted file — no measurement happens here.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from ..analysis.loops import LoopInfo
from ..bench.base import Benchmark
from ..transforms.heuristic import (HeuristicParams, LoopDecision,
                                    select_loops)
from .store import load_tuned, tuned_path


def _heuristic_by_loop(bench: Benchmark,
                       params: HeuristicParams) -> Dict[str, LoopDecision]:
    module = bench.build_module()
    decisions: Dict[str, LoopDecision] = {}
    for func in module.functions.values():
        info = LoopInfo.compute(func)
        for d in select_loops(func, info, params):
            decisions[d.loop_id] = d
    return decisions


def _describe(factor: Optional[int], unmerge: bool) -> str:
    if factor is None:
        return "-"
    if unmerge and factor >= 2:
        return f"u&u u={factor}"
    if unmerge:
        return "unmerge"
    return f"unroll u={factor}"


def render_tuned(bench: Benchmark, root: Optional[Path] = None,
                 heuristic: Optional[HeuristicParams] = None) -> str:
    """Human-readable report for one benchmark's tuned config."""
    params = heuristic or HeuristicParams()
    config, reason = load_tuned(bench.name, root)
    lines: List[str] = []
    if config is None:
        lines.append(f"{bench.name}: no usable tuned config ({reason}) — "
                     f"expected at {tuned_path(bench.name, root)}")
        lines.append("  the `tuned` pipeline falls back to the static "
                     "heuristic; run `repro tune " + bench.name +
                     "` to search")
        return "\n".join(lines)

    static = _heuristic_by_loop(bench, params)
    tuned_by_loop = {d.loop_id: d for d in config.decisions}
    lines.append(f"{bench.name}: tuned winner `{config.source}` "
                 f"({config.tuned_cycles:.0f} cycles; "
                 f"{config.speedup_over_baseline:.3f}x over baseline, "
                 f"{config.speedup_over_heuristic:.3f}x over heuristic)")
    header = (f"  {'loop':<28} {'p':>3} {'s':>5} "
              f"{'heuristic':>12} {'tuned':>12}  agreement")
    lines.append(header)
    for loop_id in sorted(set(static) | set(tuned_by_loop)):
        h = static.get(loop_id)
        t = tuned_by_loop.get(loop_id)
        h_desc = _describe(h.factor if h else None, True)
        t_desc = _describe(t.factor if t else None,
                           t.unmerge if t else False)
        agree = "same" if h_desc == t_desc else "DIFFERS"
        paths = h.paths if h else 0
        size = h.size if h else 0
        lines.append(f"  {loop_id:<28} {paths:>3} {size:>5} "
                     f"{h_desc:>12} {t_desc:>12}  {agree}")
    measured = [t for t in config.trials if t.get("status") == "ok"]
    lines.append(f"  trials: {len(config.trials)} recorded, "
                 f"{len(measured)} measured ok; oracle-verified: "
                 f"{'yes' if config.verified else 'NO'}")
    return "\n".join(lines)
