"""Persisted tuned configurations: ``results/tuned/<bench>.json``.

One file per benchmark holds the per-loop decisions the empirical search
settled on, the measurements that justify them, and enough provenance to
detect staleness:

* :data:`TUNE_SCHEMA_VERSION` — the file layout.  Bumped when the stored
  shape changes; mismatched files are reported stale and re-tuned rather
  than silently applied.
* :data:`repro.gpu.timing.TIMING_MODEL_VERSION` — the simulator's timing
  model.  A tuning is a claim about *measured cycles*; change the timing
  model and every persisted winner is unsubstantiated, so the file
  self-invalidates.

Files are written as canonical JSON (sorted keys, fixed indentation, no
timestamps), so a fixed seed produces **byte-identical** files across
``-j1``/``-jN`` and across cold versus cache-warm runs — the determinism
contract ``tests/test_tune.py`` pins.

This module is deliberately import-light (stdlib only): the harness loads
tuned decisions from inside :class:`~repro.harness.experiment.
ExperimentRunner` without risking import cycles.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..gpu.timing import TIMING_MODEL_VERSION

#: Bump when the on-disk tuned-config layout changes; stale files are
#: treated as absent (the pipeline falls back to the static heuristic with
#: a warning) and ``repro tune`` re-runs the search.
TUNE_SCHEMA_VERSION = 1

#: Environment override for the tuned-config directory.
TUNED_DIR_ENV = "REPRO_TUNED_DIR"


def default_tuned_dir() -> Path:
    """``results/tuned`` at the repository root (env-overridable)."""
    env = os.environ.get(TUNED_DIR_ENV)
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "results" / "tuned"


@dataclasses.dataclass(frozen=True)
class TunedLoopDecision:
    """One loop's tuned transform: unroll factor and whether to unmerge.

    ``factor == 1, unmerge == True`` is pure unmerging; ``factor >= 2,
    unmerge == False`` is plain unrolling; both together is u&u.  Loops
    the search left untransformed are simply absent.
    """

    loop_id: str
    factor: int
    unmerge: bool

    @property
    def key(self) -> str:
        """Canonical, sortable identity (the deterministic tie-breaker)."""
        return (f"{self.loop_id}|u={self.factor}"
                f"|unmerge={'on' if self.unmerge else 'off'}")


@dataclasses.dataclass
class TunedConfig:
    """Everything ``results/tuned/<bench>.json`` records."""

    app: str
    decisions: List[TunedLoopDecision]
    #: Which combined candidate won: ``per_loop``, ``heuristic:c=<c>``, or
    #: ``baseline`` (the search found no improving transform).
    source: str
    baseline_cycles: float
    heuristic_cycles: float
    tuned_cycles: float
    #: The differential oracle confirmed the winning config preserves the
    #: benchmark's observable semantics.  Unverified configs are never
    #: persisted, so this is True in every file ``save_tuned`` writes.
    verified: bool = True
    #: Per-candidate audit trail of the search (see ``repro tune show``):
    #: dicts with loop_id/factor/unmerge/round/scale/cycles/status.
    trials: List[Dict] = dataclasses.field(default_factory=list)

    @property
    def speedup_over_heuristic(self) -> float:
        if self.tuned_cycles <= 0:
            return 1.0
        return self.heuristic_cycles / self.tuned_cycles

    @property
    def speedup_over_baseline(self) -> float:
        if self.tuned_cycles <= 0:
            return 1.0
        return self.baseline_cycles / self.tuned_cycles


def tuned_path(app: str, root: Optional[Path] = None) -> Path:
    root = Path(root) if root is not None else default_tuned_dir()
    return root / f"{app}.json"


def _to_json(config: TunedConfig) -> Dict:
    return {
        "schema": TUNE_SCHEMA_VERSION,
        "timing": TIMING_MODEL_VERSION,
        "app": config.app,
        "source": config.source,
        "baseline_cycles": config.baseline_cycles,
        "heuristic_cycles": config.heuristic_cycles,
        "tuned_cycles": config.tuned_cycles,
        "verified": config.verified,
        "decisions": [dataclasses.asdict(d) for d in config.decisions],
        "trials": config.trials,
    }


def save_tuned(config: TunedConfig, root: Optional[Path] = None) -> Path:
    """Write canonical JSON (atomic replace); returns the path."""
    path = tuned_path(config.app, root)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(_to_json(config), sort_keys=True, indent=2) + "\n"
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)
    return path


def load_tuned(app: str, root: Optional[Path] = None
               ) -> Tuple[Optional[TunedConfig], str]:
    """``(config, "ok")`` or ``(None, reason)``.

    Reasons: ``missing``, ``corrupt``, ``stale-schema``, ``stale-timing``,
    ``unverified``.  Stale or unreadable files are *reported*, never
    silently applied — the caller decides between falling back to the
    static heuristic and re-running the search.
    """
    path = tuned_path(app, root)
    try:
        raw = path.read_text()
    except OSError:
        return None, "missing"
    try:
        data = json.loads(raw)
        schema = data.get("schema")
        timing = data.get("timing")
        if schema != TUNE_SCHEMA_VERSION:
            return None, (f"stale-schema (file v{schema}, "
                          f"current v{TUNE_SCHEMA_VERSION})")
        if timing != TIMING_MODEL_VERSION:
            return None, (f"stale-timing (file {timing!r}, "
                          f"current {TIMING_MODEL_VERSION!r})")
        if not data.get("verified"):
            return None, "unverified"
        config = TunedConfig(
            app=data["app"],
            decisions=[TunedLoopDecision(**d) for d in data["decisions"]],
            source=data["source"],
            baseline_cycles=float(data["baseline_cycles"]),
            heuristic_cycles=float(data["heuristic_cycles"]),
            tuned_cycles=float(data["tuned_cycles"]),
            verified=bool(data["verified"]),
            trials=list(data.get("trials", ())),
        )
    except Exception:
        return None, "corrupt"
    return config, "ok"


def resolve_decisions(app: str, root: Optional[Path] = None
                      ) -> Tuple[Optional[List[TunedLoopDecision]], str]:
    """The decisions to compile ``config == "tuned"`` with, or None.

    ``None`` means "fall back to the static heuristic"; the second element
    carries the reason for the caller's warning.
    """
    config, reason = load_tuned(app, root)
    if config is None:
        return None, reason
    return config.decisions, "ok"


def decisions_fingerprint(app: str, root: Optional[Path] = None) -> str:
    """Stable string identifying the *resolved* tuned pipeline for ``app``.

    Folded into the cell-cache key of every ``tuned`` cell: editing,
    deleting, or staling ``results/tuned/<app>.json`` changes the
    fingerprint and orphans cells compiled from the old decisions.  The
    heuristic fallback fingerprints as ``fallback`` (one shared key — the
    fallback pipeline is independent of *why* the file was unusable).
    """
    decisions, _ = resolve_decisions(app, root)
    if decisions is None:
        return "fallback"
    return json.dumps([dataclasses.asdict(d) for d in decisions],
                      sort_keys=True)
