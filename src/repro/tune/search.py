"""The measurement-driven search: screen, halve, combine, verify, persist.

One ``tune_benchmark`` call runs four stages:

1. **Enumerate + prune** — every per-loop candidate (see
   :mod:`repro.tune.space`), minus those the cost model predicts would
   blow past the size cap, truncated to the measurement budget in
   canonical enumeration order (never completion order).
2. **Screen with successive halving** — each round measures the surviving
   candidates as ordinary sweep cells through
   :class:`~repro.harness.parallel.ParallelRunner`; early rounds run a
   reduced launch geometry (``workload_scale``) against a
   tuner-prefixed region of the persistent cell cache, the final round
   runs full size against the shared cache.  Between rounds each loop
   keeps the better half of its candidates, ranked by
   ``(cycles, candidate key)`` — the canonical key breaks ties, so
   ``-j1`` and ``-jN`` pick identical survivors.
3. **Combine** — per-loop winners are composed under the paper's nesting
   rule and raced (as ``tuned`` cells) against whole-function decision
   sets of the static heuristic at several budgets ``c`` and against the
   do-nothing baseline.  The default ``c = 1024`` set is always in the
   race, so the winner is never slower than the static heuristic.
4. **Verify + persist** — the winner is re-measured as a pair of
   ``verify_each=True`` cells (baseline + tuned replay) through the same
   shared :class:`~repro.harness.parallel.ParallelRunner` as the search
   rounds: the baseline cell differentially anchors on the *unoptimized*
   lowering and the tuned cell on the baseline, so the composition gives
   the oracle's tuned-vs-raw guarantee, with a clean IR-verifier run
   after every pass on top.  Only then is ``results/tuned/<bench>.json``
   written; unverifiable winners are reported, never persisted.  Because
   verification cells land in the shared cell cache, a warm ``repro tune
   --all`` re-verifies every app with zero fresh evaluations.

Everything measured lands in the content-addressed cell cache, so
re-tuning is warm: a repeated search performs zero fresh evaluations
(``TuneResult.fresh_evaluations``) and reproduces the file byte for byte.
"""

from __future__ import annotations

import dataclasses
import json
import math
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..analysis.loops import LoopInfo
from ..bench.base import Benchmark
from ..harness.cache import TUNE_PREFIX, CellCache
from ..harness.experiment import Cell
from ..harness.parallel import CellSpec, ParallelRunner
from ..obs import session as obs
from ..transforms.heuristic import HeuristicParams, select_loops
from .space import (Candidate, LoopFacts, TuneParams, enumerate_candidates,
                    loop_facts)
from .store import TunedConfig, TunedLoopDecision, save_tuned

#: Environment default for ``TuneParams.budget`` (the CLI reads it).
BUDGET_ENV = "REPRO_TUNE_BUDGET"

_PASS = "tune"


@dataclasses.dataclass
class TuneResult:
    """Outcome of tuning one benchmark."""

    app: str
    config: TunedConfig
    #: Where the winner was persisted; None when verification failed (or
    #: persisting was disabled).
    path: Optional[Path]
    verified: bool
    #: Why verification failed ("" when it passed).
    verify_detail: str
    candidates_total: int
    candidates_pruned: int
    candidates_truncated: int
    #: Persistent-cache misses across the whole search — 0 on a warm
    #: re-tune (the cache-effectiveness contract the smoke test pins).
    fresh_evaluations: int

    @property
    def persisted(self) -> bool:
        return self.path is not None


def _cell_status(cell: Cell) -> str:
    if cell.error is not None:
        return "error"
    if cell.timed_out:
        return "timeout"
    if not cell.outputs_match_baseline:
        return "mismatch"
    if not math.isfinite(cell.cycles):
        return "error"
    return "ok"


def _trial(candidate: Candidate, round_label: str, scale: int,
           cell: Cell) -> Dict:
    status = _cell_status(cell)
    return {
        "loop_id": candidate.loop_id,
        "factor": candidate.factor,
        "unmerge": candidate.unmerge,
        "round": round_label,
        "scale": scale,
        "cycles": cell.cycles if status == "ok" else None,
        "status": status,
    }


def _decisions_key(decisions: List[TunedLoopDecision]) -> str:
    """Canonical identity of a combined decision set (the tie-breaker)."""
    return json.dumps([dataclasses.asdict(d) for d in decisions],
                      sort_keys=True)


def _heuristic_decisions(bench: Benchmark, base: HeuristicParams,
                         c: int, u_max: int) -> List[TunedLoopDecision]:
    """The static heuristic's whole-function decision set at budget ``c``."""
    params = dataclasses.replace(base, c=c, u_max=u_max)
    module = bench.build_module()
    decisions: List[TunedLoopDecision] = []
    for func in module.functions.values():
        info = LoopInfo.compute(func)
        for d in select_loops(func, info, params):
            if d.factor is not None:
                decisions.append(TunedLoopDecision(d.loop_id, d.factor, True))
    return sorted(decisions, key=lambda d: d.loop_id)


def _compose_per_loop(facts: List[LoopFacts],
                      winners: Dict[str, Candidate]
                      ) -> List[TunedLoopDecision]:
    """Per-loop winners composed under the paper's nesting rule.

    Innermost loops first; an outer loop's winner is dropped when any of
    its (transitive) inner loops already won — transforming both would
    multiply, not add, the duplication.
    """
    selected: set = set()
    decisions: List[TunedLoopDecision] = []
    for fact in sorted(facts, key=lambda f: (len(f.descendants), f.loop_id)):
        winner = winners.get(fact.loop_id)
        if winner is None:
            continue
        if any(d in selected for d in fact.descendants):
            continue
        selected.add(fact.loop_id)
        decisions.append(winner.decision)
    return sorted(decisions, key=lambda d: d.loop_id)


def _verify_winner(bench: Benchmark, decisions: List[TunedLoopDecision],
                   source: str, make_runner) -> Tuple[bool, str]:
    """Differentially verify the winning decision set via shared cells.

    The winner is replayed as a ``verify_each=True`` cell pair —
    baseline plus tuned — through the same cached
    :class:`~repro.harness.parallel.ParallelRunner` as the search
    rounds.  The baseline cell checks the baseline pipeline against the
    *unoptimized* lowering and the tuned cell checks the replay against
    the baseline, so bitwise-equality transitivity yields exactly the
    oracle's tuned-vs-raw guarantee; ``verify_each`` adds a clean IR
    verifier run after every pass.  Both cells persist in the shared
    cache (keyed on the decisions fingerprint and ``verify_each``), so a
    warm re-tune — including ``repro tune --all`` — re-verifies without
    a single fresh evaluation, fanned out instead of serial.

    Returns ``(ok, detail)`` with ``detail == ""`` on success.
    """
    with tempfile.TemporaryDirectory(prefix="repro-tune-verify-") as tmp:
        save_tuned(TunedConfig(
            app=bench.name, decisions=list(decisions), source=source,
            baseline_cycles=0.0, heuristic_cycles=0.0, tuned_cycles=0.0),
            Path(tmp))
        runner = make_runner(1, run_tuned_dir=Path(tmp), verify_each=True)
        cells = runner.prefetch([bench], specs=[
            CellSpec(bench.name, "baseline", None, 1),
            CellSpec(bench.name, "tuned", None, 1)])
    for cell in cells:
        status = _cell_status(cell)
        if status == "ok":
            continue
        detail = f"{cell.config}: {status}"
        if cell.error:
            detail += f" ({cell.error.strip().splitlines()[-1]})"
        return False, detail
    return True, ""


def tune_benchmark(bench: Benchmark, *,
                   params: Optional[TuneParams] = None,
                   heuristic: Optional[HeuristicParams] = None,
                   max_instructions: int = 8_000,
                   compile_timeout: Optional[float] = 20.0,
                   jobs: Optional[int] = None,
                   engine: Optional[str] = None,
                   cache_root: Optional[Path] = None,
                   use_cache: bool = True,
                   tuned_dir: Optional[Path] = None,
                   persist: bool = True) -> TuneResult:
    """Search, verify, and (on success) persist one benchmark's tuning.

    ``cache_root``/``tuned_dir`` default to the repo-level
    ``results/.cellcache`` and ``results/tuned``; tests point both at
    temporary directories.
    """
    params = params or TuneParams()
    heuristic = heuristic or HeuristicParams()
    caches: List[CellCache] = []

    def make_runner(scale: int, run_tuned_dir: Optional[Path] = None,
                    verify_each: bool = False) -> ParallelRunner:
        cache = None
        if use_cache:
            prefix = TUNE_PREFIX if scale != 1 else ""
            cache = CellCache(root=cache_root, prefix=prefix)
            caches.append(cache)
        return ParallelRunner(heuristic=heuristic,
                              max_instructions=max_instructions,
                              compile_timeout=compile_timeout,
                              verify_each=verify_each,
                              jobs=jobs, cache=cache, use_cache=use_cache,
                              engine=engine, workload_scale=scale,
                              tuned_dir=run_tuned_dir)

    # -- stage 1: enumerate + prune + budget ------------------------------
    facts = loop_facts(bench.build_module())
    admitted, pruned = enumerate_candidates(facts, params)
    total = len(admitted) + len(pruned)
    for candidate, predicted in pruned:
        obs.remark("missed", _PASS, bench.name,
                   f"pruned {candidate.key}: predicted size {predicted} "
                   f"> cap {params.size_cap}",
                   loop_id=candidate.loop_id, predicted=predicted)
    truncated = 0
    if params.budget is not None and len(admitted) > params.budget:
        truncated = len(admitted) - params.budget
        admitted = admitted[:params.budget]
        obs.remark("analysis", _PASS, bench.name,
                   f"budget {params.budget}: truncated {truncated} "
                   "candidates (canonical enumeration order)")

    trials: List[Dict] = []
    survivors = list(admitted)
    final_cells: Dict[str, Cell] = {}
    baseline_full: Optional[Cell] = None

    # -- stage 2: successive halving --------------------------------------
    scales = tuple(params.scales) or (1,)
    for round_index, scale in enumerate(scales):
        is_final = round_index == len(scales) - 1
        runner = make_runner(scale)
        specs = [CellSpec(bench.name, "baseline", None, 1)]
        specs += [CellSpec(bench.name, c.config, c.loop_id, c.factor)
                  for c in survivors]
        if is_final:
            specs.append(CellSpec(bench.name, "uu_heuristic", None, 1))
        cells = runner.prefetch([bench], specs=specs)
        by_key = {spec.key: cell for spec, cell in zip(specs, cells)}
        baseline = by_key[(bench.name, "baseline", None, 1)]
        round_label = f"screen-{round_index}"
        measured: List[Tuple[Candidate, Cell]] = []
        for candidate in survivors:
            cell = by_key[(bench.name, candidate.config, candidate.loop_id,
                           candidate.factor)]
            trials.append(_trial(candidate, round_label, scale, cell))
            measured.append((candidate, cell))
        if is_final:
            baseline_full = baseline
            heuristic_cell = by_key[(bench.name, "uu_heuristic", None, 1)]
            final_cells = {c.key: cell for c, cell in measured}
            break
        # Keep the better half per loop, ranked (cycles, canonical key).
        next_survivors: List[Candidate] = []
        by_loop: Dict[str, List[Tuple[Candidate, Cell]]] = {}
        for candidate, cell in measured:
            by_loop.setdefault(candidate.loop_id, []).append((candidate,
                                                              cell))
        for loop_id in sorted(by_loop):
            ok = [(c, cell) for c, cell in by_loop[loop_id]
                  if _cell_status(cell) == "ok"]
            ok.sort(key=lambda item: (item[1].cycles, item[0].key))
            keep = ok[:max(1, math.ceil(len(ok) / 2))]
            next_survivors.extend(c for c, _ in keep)
            for c, cell in ok[len(keep):]:
                obs.remark("missed", _PASS, bench.name,
                           f"halved out {c.key} at scale {scale} "
                           f"({cell.cycles:.0f} cycles)",
                           loop_id=c.loop_id)
        # Deterministic order for the next round: canonical enumeration.
        order = {c.key: i for i, c in enumerate(admitted)}
        survivors = sorted(next_survivors, key=lambda c: order[c.key])

    assert baseline_full is not None
    baseline_cycles = baseline_full.cycles
    heuristic_cycles = (heuristic_cell.cycles
                        if _cell_status(heuristic_cell) == "ok"
                        else float("inf"))

    # -- per-loop winners --------------------------------------------------
    winners: Dict[str, Candidate] = {}
    by_loop = {}
    for candidate in survivors:
        by_loop.setdefault(candidate.loop_id, []).append(candidate)
    for loop_id in sorted(by_loop):
        ok = [(final_cells[c.key].cycles, c.key, c) for c in by_loop[loop_id]
              if _cell_status(final_cells[c.key]) == "ok"
              and final_cells[c.key].cycles < baseline_cycles]
        if not ok:
            continue
        ok.sort(key=lambda item: (item[0], item[1]))
        winners[loop_id] = ok[0][2]
        obs.remark("applied", _PASS, bench.name,
                   f"per-loop winner {ok[0][2].key} "
                   f"({ok[0][0]:.0f} cycles vs baseline "
                   f"{baseline_cycles:.0f})", loop_id=loop_id)

    # -- stage 3: combined round ------------------------------------------
    combined: List[Tuple[str, List[TunedLoopDecision]]] = []
    for c in params.budgets:
        combined.append((f"heuristic:c={c}",
                         _heuristic_decisions(bench, heuristic, c,
                                              params.u_max)))
    combined.append(("per_loop", _compose_per_loop(facts, winners)))
    # Dedupe identical decision sets (e.g. per_loop == heuristic:c=1024);
    # first name in the deterministic order above wins the label.
    seen: Dict[str, str] = {}
    unique: List[Tuple[str, List[TunedLoopDecision]]] = []
    for name, decisions in combined:
        key = _decisions_key(decisions)
        if key in seen:
            continue
        seen[key] = name
        unique.append((name, decisions))

    # (cycles, canonical decisions key, name, decisions); the do-nothing
    # baseline races too, reusing the already-measured baseline cell.
    race: List[Tuple[float, str, str, List[TunedLoopDecision]]] = [
        (baseline_cycles, _decisions_key([]), "baseline", [])]
    for name, decisions in unique:
        if not decisions:
            continue  # identical to the baseline entry above
        with tempfile.TemporaryDirectory(prefix="repro-tune-") as tmp:
            tmp_dir = Path(tmp)
            save_tuned(TunedConfig(
                app=bench.name, decisions=decisions, source=name,
                baseline_cycles=0.0, heuristic_cycles=0.0, tuned_cycles=0.0),
                tmp_dir)
            runner = make_runner(1, run_tuned_dir=tmp_dir)
            cell = runner.prefetch([bench], specs=[
                CellSpec(bench.name, "baseline", None, 1),
                CellSpec(bench.name, "tuned", None, 1)])[1]
        status = _cell_status(cell)
        trials.append({
            "loop_id": None, "factor": None, "unmerge": None,
            "round": "combined", "scale": 1,
            "cycles": cell.cycles if status == "ok" else None,
            "status": status, "source": name,
            "decisions": [dataclasses.asdict(d) for d in decisions],
        })
        if status != "ok":
            obs.remark("missed", _PASS, bench.name,
                       f"combined candidate {name} rejected ({status})")
            continue
        race.append((cell.cycles, _decisions_key(decisions), name,
                     decisions))

    race.sort(key=lambda item: (item[0], item[1]))
    tuned_cycles, _, source, decisions = race[0]
    obs.remark("applied", _PASS, bench.name,
               f"winner {source}: {tuned_cycles:.0f} cycles "
               f"(baseline {baseline_cycles:.0f}, heuristic "
               f"{heuristic_cycles:.0f})")

    # -- stage 4: oracle verification + persistence ------------------------
    verified, verify_detail = _verify_winner(bench, decisions, source,
                                             make_runner)
    config = TunedConfig(app=bench.name, decisions=decisions, source=source,
                         baseline_cycles=baseline_cycles,
                         heuristic_cycles=heuristic_cycles,
                         tuned_cycles=tuned_cycles,
                         verified=verified, trials=trials)
    path = None
    if verified and persist:
        path = save_tuned(config, tuned_dir)
    elif not verified:
        obs.remark("missed", _PASS, bench.name,
                   f"winner {source} failed oracle verification "
                   f"({verify_detail}); not persisted")
    return TuneResult(
        app=bench.name, config=config, path=path, verified=verified,
        verify_detail=verify_detail,
        candidates_total=total, candidates_pruned=len(pruned),
        candidates_truncated=truncated,
        fresh_evaluations=sum(c.misses for c in caches))
