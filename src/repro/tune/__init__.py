"""repro.tune — empirical per-loop autotuner.

The paper's selection heuristic predicts one unroll factor per loop from a
static cost model (``f(p, s, u) < c``); its own Figure 8 scatter shows the
best factor varies widely per benchmark.  This package searches the space
{unroll factor u in 1..u_max} x {unmerge on/off} x {heuristic budget c}
*empirically* — by compiling and timing candidates on the simulator — and
persists the winners as ``results/tuned/<bench>.json``, which plug in as
the ``tuned`` pipeline configuration everywhere a config name is accepted.

* :mod:`repro.tune.space`  — candidate enumeration with cost-model pruning;
* :mod:`repro.tune.search` — the measurement-driven search (successive
  halving over launch geometries, fan-out through
  :class:`~repro.harness.parallel.ParallelRunner`, deterministic
  tie-breaking, oracle verification before persisting);
* :mod:`repro.tune.store`  — the versioned on-disk tuned-config format and
  its staleness rules;
* :mod:`repro.tune.show`   — rendering tuned decisions against what the
  static heuristic would have picked.
"""

from .search import BUDGET_ENV, TuneResult, tune_benchmark
from .show import render_tuned
from .space import Candidate, TuneParams, enumerate_candidates, loop_facts
from .store import (TUNE_SCHEMA_VERSION, TunedConfig, TunedLoopDecision,
                    decisions_fingerprint, default_tuned_dir, load_tuned,
                    resolve_decisions, save_tuned, tuned_path)

__all__ = [
    "BUDGET_ENV", "Candidate", "TUNE_SCHEMA_VERSION", "TuneParams",
    "TuneResult", "TunedConfig", "TunedLoopDecision",
    "decisions_fingerprint", "default_tuned_dir", "enumerate_candidates",
    "load_tuned", "loop_facts", "render_tuned", "resolve_decisions",
    "save_tuned", "tune_benchmark", "tuned_path",
]
