"""Differential oracle: one kernel, every pipeline configuration.

The semantic anchor is the **unoptimized** lowering of the kernel,
executed by the SIMT interpreter — not the baseline pipeline's output, so
a miscompile in the shared cleanup battery is caught even when every
configuration reproduces it identically.  Each configuration must then

* survive the pipeline with ``verify_each=True`` (a clean
  :mod:`repro.ir.verifier` run after every pass), and
* produce **bit-identical** per-lane return values for all 32 lanes of a
  warp.

Anything else is a :class:`ConfigOutcome` failure of kind ``verifier``,
``crash``, or ``mismatch``.

Subjects are *rebuildable* (re-lowered or re-parsed per configuration)
because passes mutate modules in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..analysis.loops import LoopInfo
from ..frontend.ast import KernelDef
from ..frontend.lower import lower_kernels
from ..gpu.machine import SimtMachine
from ..ir.function import Function
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..ir.types import FloatType, IntType
from ..ir.verifier import verify_module
from ..transforms.pipeline import compile_module

#: One warp; every kernel runs all 32 lanes so divergent branches matter.
LANES = 32
#: u&u unroll factors checked per loop (the paper's sweep).
UU_FACTORS = (2, 4, 8)
#: Plain-unroll factor checked per loop.
UNROLL_FACTOR = 2
#: Growth cap passed to the transforms.  Deliberately small: fuzz kernels
#: have tens of instructions, and a cap in the thousands already lets
#: u&u duplicate multi-way merges across unrolled iterations while keeping
#: the cleanup fixpoint (the cost of a config run) tractable on one core.
MAX_INSTRUCTIONS = 3_000


class OracleError(Exception):
    """The subject itself is unusable (not a miscompile)."""


@dataclass(frozen=True)
class ConfigSpec:
    """One pipeline configuration to check a kernel under."""

    config: str
    loop_id: Optional[str] = None
    factor: int = 1

    @property
    def label(self) -> str:
        parts = [self.config]
        if self.loop_id is not None:
            parts.append(self.loop_id)
        if self.factor != 1:
            parts.append(f"u={self.factor}")
        return "/".join(parts)


@dataclass
class ConfigOutcome:
    """Result of one configuration run against the reference."""

    spec: ConfigSpec
    ok: bool
    kind: str = "ok"     # ok | mismatch | verifier | crash
    detail: str = ""

    def describe(self) -> str:
        if self.ok:
            return f"{self.spec.label}: ok"
        return f"{self.spec.label}: {self.kind} — {self.detail}"


@dataclass
class KernelReport:
    """All configuration outcomes for one kernel."""

    name: str
    seed: Optional[int] = None
    outcomes: List[ConfigOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def failures(self) -> List[ConfigOutcome]:
        return [o for o in self.outcomes if not o.ok]


class Subject:
    """A kernel under differential test, rebuildable from its source."""

    def __init__(self, kernel: Optional[KernelDef] = None,
                 text: Optional[str] = None, name: Optional[str] = None,
                 seed: Optional[int] = None) -> None:
        if (kernel is None) == (text is None):
            raise OracleError("Subject needs exactly one of kernel/text")
        self.kernel = kernel
        self.text = text
        self.name = name or (kernel.name if kernel is not None else "subject")
        self.seed = seed

    def build(self) -> Module:
        """Fresh, unoptimized module (lowering does not mutate the AST)."""
        if self.kernel is not None:
            return lower_kernels([self.kernel], self.name)
        return parse_module(self.text, self.name)  # type: ignore[arg-type]

    @property
    def ir(self) -> str:
        return print_module(self.build())


def subject_from_kernel(kernel: KernelDef,
                        seed: Optional[int] = None) -> Subject:
    return Subject(kernel=kernel, seed=seed)


def subject_from_text(text: str, name: str = "subject",
                      seed: Optional[int] = None) -> Subject:
    return Subject(text=text, name=name, seed=seed)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def default_args(func: Function) -> List:
    """Deterministic scalar arguments derived from parameter position."""
    args: List = []
    for i, arg in enumerate(func.args):
        if isinstance(arg.type, IntType):
            args.append(5 + 3 * i)
        elif isinstance(arg.type, FloatType):
            args.append(1.5 + 0.75 * i)
        else:
            raise OracleError(
                f"@{func.name}: parameter {arg.name} has type {arg.type!r}; "
                f"differential subjects must be pure scalar kernels")
    return args


def execute(module: Module, lanes: int = LANES,
            engine: Optional[str] = None) -> Dict[str, np.ndarray]:
    """Per-lane return values of every function, on one warp.

    ``engine`` selects the execution engine; the engines are bit-identical
    by contract, and single-warp subjects take the per-warp path anyway,
    so the oracle treats them as interchangeable.
    """
    machine = SimtMachine(module, engine=engine)
    outputs: Dict[str, np.ndarray] = {}
    for name, func in module.functions.items():
        ret, _ = machine.run_function(func, default_args(func), lanes)
        outputs[name] = (np.zeros(0) if ret is None
                         else np.ascontiguousarray(ret))
    return outputs


def compare(reference: Dict[str, np.ndarray],
            candidate: Dict[str, np.ndarray]) -> Optional[str]:
    """First bitwise difference, or None.  NaNs compare by representation."""
    for name, ref in reference.items():
        got = candidate.get(name)
        if got is None:
            return f"@{name}: output missing"
        if got.dtype != ref.dtype or got.shape != ref.shape:
            return (f"@{name}: shape/dtype {got.dtype}{got.shape} != "
                    f"{ref.dtype}{ref.shape}")
        if got.tobytes() == ref.tobytes():
            continue
        for lane in range(ref.size):
            if ref[lane:lane + 1].tobytes() != got[lane:lane + 1].tobytes():
                return (f"@{name} lane {lane}: {got[lane]!r} != "
                        f"{ref[lane]!r} (reference)")
    return None


# ---------------------------------------------------------------------------
# The differential
# ---------------------------------------------------------------------------

def config_specs(module: Module) -> List[ConfigSpec]:
    """Every configuration applicable to ``module``.

    Loop ids are discovered on the unoptimized module — the same ids
    :meth:`repro.bench.base.Benchmark.loop_ids` reports and the per-loop
    passes re-resolve at run time.
    """
    specs = [ConfigSpec("baseline")]
    for func in module.functions.values():
        info = LoopInfo.compute(func)
        for loop in info.loops:
            specs.append(ConfigSpec("unroll", loop.loop_id, UNROLL_FACTOR))
            specs.append(ConfigSpec("unmerge", loop.loop_id, 1))
            for factor in UU_FACTORS:
                specs.append(ConfigSpec("uu", loop.loop_id, factor))
    specs.append(ConfigSpec("uu_heuristic"))
    return specs


def run_config(subject: Subject, spec: ConfigSpec,
               reference: Dict[str, np.ndarray], lanes: int = LANES,
               max_instructions: int = MAX_INSTRUCTIONS,
               engine: Optional[str] = None) -> ConfigOutcome:
    """Compile one configuration and compare its outputs to the reference."""
    module = subject.build()
    try:
        compile_module(module, spec.config, loop_id=spec.loop_id,
                       factor=spec.factor, max_instructions=max_instructions,
                       verify_each=True)
    except AssertionError as exc:
        # PassManager's verify_each wrapper: the message names the pass.
        return ConfigOutcome(spec, False, "verifier", str(exc))
    except Exception as exc:  # noqa: BLE001 — any pipeline crash is a finding
        return ConfigOutcome(spec, False, "crash",
                             f"{type(exc).__name__}: {exc}")
    try:
        outputs = execute(module, lanes, engine=engine)
    except Exception as exc:  # noqa: BLE001
        return ConfigOutcome(spec, False, "crash",
                             f"interpreting optimized IR: "
                             f"{type(exc).__name__}: {exc}")
    detail = compare(reference, outputs)
    if detail is not None:
        return ConfigOutcome(spec, False, "mismatch", detail)
    return ConfigOutcome(spec, True)


def run_differential(subject: Subject, lanes: int = LANES,
                     max_instructions: int = MAX_INSTRUCTIONS,
                     engine: Optional[str] = None) -> KernelReport:
    """Check ``subject`` under every applicable configuration."""
    module = subject.build()
    verify_module(module)  # a broken *unoptimized* module is a subject bug
    reference = execute(module, lanes, engine=engine)
    report = KernelReport(subject.name, subject.seed)
    for spec in config_specs(module):
        report.outcomes.append(
            run_config(subject, spec, reference, lanes, max_instructions,
                       engine=engine))
    return report


def verify_tuned_config(bench, decisions,
                        max_instructions: int = 20_000,
                        engine: Optional[str] = None) -> ConfigOutcome:
    """Oracle check of one benchmark's *tuned* decision set.

    The autotuner calls this before persisting a winner: like
    :func:`run_differential`, the semantic anchor is the **unoptimized**
    lowering — a miscompile shared by every pipeline would slip past the
    search's baseline-differential check, but not past this one.  Unlike
    the scalar fuzz subjects, benchmarks take pointer arguments, so the
    reference and candidate both execute the full workload
    (:meth:`~repro.bench.base.Benchmark.run`) and compare observable
    output buffers bitwise.
    """
    spec = ConfigSpec("tuned")
    raw = bench.build_module()
    verify_module(raw)
    reference, _ = bench.run(raw, engine=engine)
    module = bench.build_module()
    try:
        compile_module(module, "tuned", tuned=list(decisions),
                       max_instructions=max_instructions, verify_each=True)
    except AssertionError as exc:
        return ConfigOutcome(spec, False, "verifier", str(exc))
    except Exception as exc:  # noqa: BLE001 — any pipeline crash is a finding
        return ConfigOutcome(spec, False, "crash",
                             f"{type(exc).__name__}: {exc}")
    try:
        outputs, _ = bench.run(module, engine=engine)
    except Exception as exc:  # noqa: BLE001
        return ConfigOutcome(spec, False, "crash",
                             f"running tuned module: "
                             f"{type(exc).__name__}: {exc}")
    detail = compare({k: v.reshape(-1) for k, v in reference.items()},
                     {k: v.reshape(-1) for k, v in outputs.items()})
    if detail is not None:
        return ConfigOutcome(spec, False, "mismatch", detail)
    return ConfigOutcome(spec, True)
