"""Differential fuzzing of the five pipeline configurations.

The fuzzer hunts miscompiles: a seeded generator produces structured
kernels (loops with multi-way merges, divergent branches, mixed int/float
arithmetic, casts, pure intrinsics), a differential oracle compiles each
kernel under every pipeline configuration of the paper and asserts
bit-identical interpreter outputs against the *unoptimized* lowering, a
pass-prefix bisector names the pass application that first diverges, and a
delta-debugging reducer shrinks failures to minimal repros that are
persisted under ``tests/corpus/`` as regression kernels.

Entry points: ``repro fuzz run|reduce|corpus`` on the CLI, or
:func:`run_campaign` / :func:`run_differential` from Python.
"""

from .bisect import BisectResult, bisect_divergence
from .campaign import (CampaignResult, FailureRecord, fuzz_one, run_campaign)
from .corpus import (CorpusEntry, check_corpus, default_corpus_dir,
                     load_corpus, save_regression)
from .generator import GeneratorConfig, generate_kernel
from .oracle import (ConfigOutcome, ConfigSpec, KernelReport, Subject,
                     config_specs, execute, run_differential,
                     subject_from_kernel, subject_from_text)
from .reduce import block_count, failure_matcher, reduce_failure, reduce_kernel

__all__ = [
    "BisectResult", "bisect_divergence",
    "CampaignResult", "FailureRecord", "fuzz_one", "run_campaign",
    "CorpusEntry", "check_corpus", "default_corpus_dir", "load_corpus",
    "save_regression",
    "GeneratorConfig", "generate_kernel",
    "ConfigOutcome", "ConfigSpec", "KernelReport", "Subject",
    "config_specs", "execute", "run_differential", "subject_from_kernel",
    "subject_from_text",
    "block_count", "failure_matcher", "reduce_failure", "reduce_kernel",
]
