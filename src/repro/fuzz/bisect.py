"""Pass-prefix bisection: name the pass application that first diverges.

The oracle says *that* a configuration miscompiles; this module says
*where*.  It mirrors :func:`repro.transforms.pipeline.build_pipeline`
stage by stage — the early SimplifyCFG, the configuration's transform, the
fixpoint cleanup battery (replicating
:class:`~repro.transforms.pass_manager.FixpointPassManager`'s
version-based skip logic exactly, so the pass application sequence is the
one the real pipeline executes), then the late passes — and after every
application verifies the IR and re-interprets the module against the
unoptimized reference.  The first application whose output diverges is the
culprit.

Because every pass is a deterministic function of the IR, this replay
produces exactly the IR states the monolithic pipeline went through; the
bisection is exact, not probabilistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ir.verifier import VerificationError, verify_module
from ..obs import session as obs
from ..transforms.pipeline import cleanup_passes, late_passes, transform_passes
from ..transforms.simplifycfg import SimplifyCFG
from .oracle import (LANES, MAX_INSTRUCTIONS, ConfigSpec, Subject, compare,
                     execute)

#: Mirrors FixpointPassManager's default iteration bound.
_FIXPOINT_MAX_ITERATIONS = 8


@dataclass
class BisectResult:
    """The first diverging pass application of a pipeline replay."""

    culprit: str                 # pass name
    step: int                    # 1-based index into the application trail
    kind: str                    # mismatch | verifier | crash
    detail: str
    trail: List[str] = field(default_factory=list)
    #: Optimization remarks the culprit application emitted (JSON dicts,
    #: :meth:`repro.obs.Remark.to_json` shape) — what the pass *thought*
    #: it did when it broke the module.
    remarks: List[Dict] = field(default_factory=list)

    def describe(self) -> str:
        text = (f"step {self.step}/{len(self.trail)} ({self.culprit}): "
                f"{self.kind} — {self.detail}")
        for remark in self.remarks:
            text += f"\n      remark: {remark.get('message', '?')}"
        return text


def bisect_divergence(subject: Subject, spec: ConfigSpec,
                      lanes: int = LANES,
                      max_instructions: int = MAX_INSTRUCTIONS
                      ) -> Optional[BisectResult]:
    """Replay ``spec``'s pipeline on ``subject``, checking after each pass.

    Returns None when the full pipeline completes without diverging from
    the unoptimized reference (i.e. the failure did not reproduce).
    """
    reference = execute(subject.build(), lanes)
    module = subject.build()
    trail: List[str] = []

    def check(name: str) -> Optional[BisectResult]:
        try:
            verify_module(module)
        except VerificationError as exc:
            return BisectResult(name, len(trail), "verifier", str(exc),
                                list(trail))
        try:
            outputs = execute(module, lanes)
        except Exception as exc:  # noqa: BLE001
            return BisectResult(name, len(trail), "crash",
                                f"{type(exc).__name__}: {exc}", list(trail))
        detail = compare(reference, outputs)
        if detail is not None:
            return BisectResult(name, len(trail), "mismatch", detail,
                                list(trail))
        return None

    def apply_and_check(pass_, func) -> Optional[BisectResult]:
        # Each application runs under a throwaway obs session so a guilty
        # verdict carries the remarks the culprit emitted — independent of
        # (and invisible to) any outer REPRO_TRACE session.
        with obs.capture() as captured:
            try:
                pass_.run(func)
            except Exception as exc:  # noqa: BLE001
                trail.append(pass_.name)
                return BisectResult(
                    pass_.name, len(trail), "crash",
                    f"{type(exc).__name__}: {exc}", list(trail),
                    remarks=[r.to_json() for r in captured.remarks])
        trail.append(pass_.name)
        result = check(pass_.name)
        if result is not None:
            result.remarks = [r.to_json() for r in captured.remarks]
        return result

    # Pass instances are shared across functions, as in the real pipeline.
    head = [SimplifyCFG()] + transform_passes(
        spec.config, loop_id=spec.loop_id, factor=spec.factor,
        max_instructions=max_instructions)
    cleanup = cleanup_passes()
    late = late_passes()

    for func in module.functions.values():
        for pass_ in head:
            result = apply_and_check(pass_, func)
            if result is not None:
                return result

        # Fixpoint cleanup with FixpointPassManager's skip logic: a pass
        # that reported no change is skipped until another pass mutates
        # the function (tracked by a version counter).
        version = 0
        clean_at: Dict[int, int] = {}
        for _ in range(_FIXPOINT_MAX_ITERATIONS):
            iteration_changed = False
            for index, pass_ in enumerate(cleanup):
                if clean_at.get(index) == version:
                    continue
                with obs.capture() as captured:
                    try:
                        changed = pass_.run(func)
                    except Exception as exc:  # noqa: BLE001
                        trail.append(pass_.name)
                        return BisectResult(
                            pass_.name, len(trail), "crash",
                            f"{type(exc).__name__}: {exc}", list(trail),
                            remarks=[r.to_json()
                                     for r in captured.remarks])
                trail.append(pass_.name)
                if changed:
                    version += 1
                    clean_at.pop(index, None)
                    iteration_changed = True
                    result = check(pass_.name)
                    if result is not None:
                        result.remarks = [r.to_json()
                                          for r in captured.remarks]
                        return result
                else:
                    # No change means bit-identical IR: nothing to re-check.
                    clean_at[index] = version
            if not iteration_changed:
                break

        for pass_ in late:
            result = apply_and_check(pass_, func)
            if result is not None:
                return result
    return None
