"""Seeded generator of structured fuzz kernels.

Kernels are frontend ASTs (:mod:`repro.frontend.ast`) designed to stress
exactly the code the paper's transforms duplicate and the cleanup battery
then rewrites: bounded loops containing multi-way merges (if/elif/else
chains assigning the same variable — the unmerge trigger), lane-divergent
branches on ``tid.x``, mixed i32/i64/f32/f64 arithmetic with explicit
casts, pure math intrinsics, and constant-only subtrees that SCCP and
instcombine will fold at compile time (driving the folder down the same
code paths the interpreter takes at run time).

Every generated kernel is **total and deterministic by construction**, so
any cross-configuration output difference is a miscompile, never UB:

* loops are ``For`` with literal bounds and positive literal steps, and
  the induction variable is never reassigned in the body (``Break`` is the
  only early exit) — termination is structural;
* every operation has defined semantics in the folder/interpreter
  contract (:mod:`repro.semantics`): integer ops wrap, ``sdiv``/``srem``
  by zero yield 0, ``fptosi`` saturates, float ops are IEEE;
* shift amounts are literals strictly below the operand width (the one
  case the contract declares undefined);
* there is no memory traffic: a kernel is a pure function of its scalar
  parameters and the lane id, returning an ``i64`` hash of all live state.

Generation is a pure function of the seed (``random.Random(seed)``), so a
failing seed is a complete bug report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..frontend.ast import (Assign, BinOp, Break, Call, Cast, Cmp, Expr, For,
                            If, KernelDef, Lit, Param, Return, Stmt, Var)

INT_TYPES = ("i32", "i64")
FLOAT_TYPES = ("f32", "f64")
_BITS = {"i32": 32, "i64": 64}

#: Unary float intrinsics with total numpy semantics (repro.semantics).
UNARY_INTRINSICS = ("sqrt", "fabs", "exp", "log", "sin", "cos", "atan",
                    "floor")
BINARY_INTRINSICS = ("pow", "fmin", "fmax")
INT_INTRINSICS = ("min", "max")

#: Float literals that historically separate folder from interpreter:
#: signed zeros (fdiv sign), values beyond every int range (fptosi
#: saturation), subnormal-adjacent magnitudes, and infinities.
SPECIAL_FLOATS = (0.0, -0.0, 1.0, -1.0, 0.5, -2.5, 3.5, 1e30, -1e30,
                  1e-30, 6.0e9, -6.0e9, 9.3e18, float("inf"), float("-inf"))


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs bounding the shape of generated kernels."""

    max_expr_depth: int = 3    # nesting of generated expressions
    max_stmt_depth: int = 2    # nesting of loops/branches
    max_loops: int = 2         # loops per kernel (possibly nested)
    max_trip: int = 6          # literal trip-count bound
    p_nan: float = 0.04        # probability of a literal NaN


def generate_kernel(seed: int,
                    config: GeneratorConfig = GeneratorConfig()) -> KernelDef:
    """Deterministically generate one fuzz kernel for ``seed``."""
    return _Gen(random.Random(seed), config, seed).build()


class _Gen:
    def __init__(self, rng: random.Random, cfg: GeneratorConfig,
                 seed: int) -> None:
        self.rng = rng
        self.cfg = cfg
        self.seed = seed
        self.int_vars: Dict[str, str] = {}    # name -> "i32"/"i64"
        self.float_vars: Dict[str, str] = {}  # name -> "f32"/"f64"
        self.loops_left = cfg.max_loops
        self.counter = 0

    # -- helpers -------------------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def _pick(self, seq):
        return seq[self.rng.randrange(len(seq))]

    def _tid(self, type_: str) -> Expr:
        return Cast(type_, Call("tid.x"))

    # -- top level -----------------------------------------------------------
    def build(self) -> KernelDef:
        rng = self.rng
        body: List[Stmt] = []

        # Variable pool: the first int/float variables mix in the scalar
        # parameters so constant folding cannot erase the whole kernel.
        for i in range(rng.randint(2, 3)):
            name, type_ = self._fresh("v"), self._pick(INT_TYPES)
            if i == 0:
                init: Expr = Cast(type_, BinOp("&", Var("seed"), Lit(1023)))
            else:
                init = Lit(rng.randint(-64, 64), type_)
            body.append(Assign(name, init))
            self.int_vars[name] = type_
        for i in range(rng.randint(1, 2)):
            name, type_ = self._fresh("f"), self._pick(FLOAT_TYPES)
            if i == 0:
                init = Cast(type_, Var("noise"))
            else:
                init = Lit(self._float_value(), type_)
            body.append(Assign(name, init))
            self.float_vars[name] = type_

        for _ in range(rng.randint(3, 5)):
            body.append(self._stmt(0))
        body.append(Return(self._result_expr()))

        return KernelDef(
            name=f"fuzz{self.seed}",
            params=[Param("seed", "i64"), Param("noise", "f64")],
            body=body,
            ret_type="i64",
        )

    def _result_expr(self) -> Expr:
        """Hash every live variable into the i64 return value."""
        names = sorted(self.int_vars)
        acc: Expr = Cast("i64", Var(names[0]))
        for name in names[1:]:
            acc = BinOp("^", BinOp("*", acc, Lit(0x9E3779B97F4A7C15)),
                        Cast("i64", Var(name)))
        for name in sorted(self.float_vars):
            # Scale then saturating-fptosi: NaN -> 0, huge -> clamped.
            acc = BinOp("^", BinOp("*", acc, Lit(0x2545F4914F6CDD1D)),
                        Cast("i64", BinOp("*", Var(name), Lit(4096.0))))
        return acc

    # -- statements ----------------------------------------------------------
    def _block(self, depth: int, n: int) -> List[Stmt]:
        return [self._stmt(depth) for _ in range(n)]

    def _stmt(self, depth: int) -> Stmt:
        roll = self.rng.random()
        if (self.loops_left > 0 and depth < self.cfg.max_stmt_depth
                and roll < 0.35):
            return self._loop(depth)
        if depth < self.cfg.max_stmt_depth and roll < 0.70:
            return self._branch(depth)
        return self._assign()

    def _assign(self) -> Stmt:
        rng = self.rng
        if rng.random() < 0.45 and self.float_vars:
            name = self._pick(sorted(self.float_vars))
            return Assign(name, self._float_expr(self.float_vars[name], 0))
        name = self._pick(sorted(self.int_vars))
        return Assign(name, self._int_expr(self.int_vars[name], 0))

    def _loop(self, depth: int) -> Stmt:
        rng = self.rng
        self.loops_left -= 1
        var = self._fresh("i")
        trip = rng.randint(2, self.cfg.max_trip)
        step = Lit(2) if rng.random() < 0.2 else Lit(1)
        body = self._block(depth + 1, rng.randint(1, 2))
        # The loop always does work that depends on the induction variable,
        # so unrolling genuinely changes the code the cleanup passes see.
        name = self._pick(sorted(self.int_vars))
        type_ = self.int_vars[name]
        body.append(Assign(name, BinOp(
            "+", Var(name),
            Cast(type_, BinOp("*", Var(var), Lit(rng.randint(1, 5)))))))
        if rng.random() < 0.25:
            body.insert(rng.randrange(len(body)),
                        If(self._condition(depth + 1), [Break()]))
        return For(var, Lit(0), Lit(trip), body, step)

    def _branch(self, depth: int) -> Stmt:
        """If / if-else / if-elif-else — the multi-way merge shapes."""
        rng = self.rng
        cond = self._condition(depth)
        then = self._block(depth + 1, rng.randint(1, 2))
        roll = rng.random()
        if roll < 0.3:
            stmt = If(cond, then)
        elif roll < 0.65:
            stmt = If(cond, then, self._block(depth + 1, rng.randint(1, 2)))
        else:
            # 3-way (sometimes 4-way) merge: the unmerge transform's target.
            arms = [then, self._block(depth + 1, 1), self._block(depth + 1, 1)]
            if rng.random() < 0.3:
                arms.append(self._block(depth + 1, 1))
            chain: List[Stmt] = arms[-1]
            for arm in reversed(arms[1:-1]):
                chain = [If(self._condition(depth + 1), arm, chain)]
            stmt = If(cond, arms[0], chain)
        if rng.random() < 0.5:
            # All arms assign the same variable: classic merge-point phi.
            name = self._pick(sorted(self.int_vars))
            type_ = self.int_vars[name]
            for arm in self._arms(stmt):
                arm.append(Assign(name, self._int_expr(type_, 2)))
        return stmt

    def _arms(self, stmt: If) -> List[List[Stmt]]:
        arms = [stmt.then]
        if len(stmt.els) == 1 and isinstance(stmt.els[0], If):
            arms.extend(self._arms(stmt.els[0]))
        elif stmt.els:
            arms.append(stmt.els)
        return arms

    def _condition(self, depth: int) -> Expr:
        rng = self.rng
        roll = rng.random()
        if roll < 0.4:
            # Lane-divergent: branches disagree inside the warp.
            type_ = self._pick(INT_TYPES)
            modulus = rng.randint(2, 8)
            return Cmp(self._pick(("<", "<=", "==", "!=")),
                       BinOp("%", self._tid(type_), Lit(modulus)),
                       Lit(rng.randint(0, modulus - 1)))
        if roll < 0.8 or not self.float_vars:
            type_ = self._pick(INT_TYPES)
            return Cmp(self._pick(("<", "<=", ">", ">=", "==", "!=")),
                       self._int_expr(type_, 2), self._int_expr(type_, 2))
        type_ = self._pick(FLOAT_TYPES)
        return Cmp(self._pick(("<", "<=", ">", ">=")),
                   self._float_expr(type_, 2), self._float_expr(type_, 2))

    # -- expressions ---------------------------------------------------------
    def _int_expr(self, type_: str, depth: int) -> Expr:
        rng = self.rng
        if depth >= self.cfg.max_expr_depth:
            return self._int_atom(type_)
        roll = rng.random()
        if roll < 0.25:
            return self._int_atom(type_)
        if roll < 0.55:
            op = self._pick(("+", "-", "*", "/", "%", "&", "|", "^"))
            return BinOp(op, self._int_expr(type_, depth + 1),
                         self._int_expr(type_, depth + 1))
        if roll < 0.68:
            # Literal shift amount strictly below the width (the contract's
            # only undefined case is excluded by construction).
            bits = _BITS[type_]
            amount = self._pick((1, 2, 3, 5, 7, 13, bits - 1))
            return BinOp(self._pick(("<<", ">>")),
                         self._int_expr(type_, depth + 1), Lit(amount))
        if roll < 0.80:
            # Saturating fptosi of a float subtree.
            ftype = self._pick(FLOAT_TYPES)
            return Cast(type_, self._float_expr(ftype, depth + 1))
        if roll < 0.88:
            other = "i64" if type_ == "i32" else "i32"
            return Cast(type_, self._int_expr(other, depth + 1))
        if roll < 0.95:
            return Call(self._pick(INT_INTRINSICS),
                        (self._int_expr(type_, depth + 1),
                         self._int_expr(type_, depth + 1)))
        return self._int_const_expr(type_)

    def _int_atom(self, type_: str) -> Expr:
        rng = self.rng
        names = [n for n, t in self.int_vars.items() if t == type_]
        roll = rng.random()
        if names and roll < 0.55:
            return Var(self._pick(sorted(names)))
        if roll < 0.75:
            return Lit(self._int_value(type_), type_)
        return self._tid(type_)

    def _int_value(self, type_: str) -> int:
        rng = self.rng
        roll = rng.random()
        if roll < 0.7:
            return rng.randint(-16, 16)
        bits = _BITS[type_]
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        if roll < 0.85:
            return self._pick((lo, hi, hi - 1, lo + 1, 0, -1))
        return rng.randint(lo, hi)

    def _int_const_expr(self, type_: str) -> Expr:
        """Literal-only subtree: SCCP must fold it identically to runtime."""
        op = self._pick(("+", "*", "/", "%", "^"))
        return BinOp(op, Lit(self._int_value(type_), type_),
                     Lit(self._int_value(type_), type_))

    def _float_expr(self, type_: str, depth: int) -> Expr:
        rng = self.rng
        if depth >= self.cfg.max_expr_depth:
            return self._float_atom(type_)
        roll = rng.random()
        if roll < 0.25:
            return self._float_atom(type_)
        if roll < 0.55:
            op = self._pick(("+", "-", "*", "/", "%"))
            return BinOp(op, self._float_expr(type_, depth + 1),
                         self._float_expr(type_, depth + 1))
        if roll < 0.70:
            return Call(self._pick(UNARY_INTRINSICS),
                        (self._float_expr(type_, depth + 1),))
        if roll < 0.78:
            return Call(self._pick(BINARY_INTRINSICS),
                        (self._float_expr(type_, depth + 1),
                         self._float_expr(type_, depth + 1)))
        if roll < 0.86:
            # Single-rounding sitofp from a (possibly huge) int subtree.
            itype = self._pick(INT_TYPES)
            return Cast(type_, self._int_expr(itype, depth + 1))
        if roll < 0.93:
            other = "f64" if type_ == "f32" else "f32"
            return Cast(type_, self._float_expr(other, depth + 1))
        return self._float_const_expr(type_)

    def _float_atom(self, type_: str) -> Expr:
        rng = self.rng
        names = [n for n, t in self.float_vars.items() if t == type_]
        if names and rng.random() < 0.6:
            return Var(self._pick(sorted(names)))
        return Lit(self._float_value(), type_)

    def _float_value(self) -> float:
        rng = self.rng
        if rng.random() < self.cfg.p_nan:
            return float("nan")
        if rng.random() < 0.45:
            return self._pick(SPECIAL_FLOATS)
        return round(rng.uniform(-100.0, 100.0), 3)

    def _float_const_expr(self, type_: str) -> Expr:
        """Literal-only float subtree, biased toward signed-zero divisors."""
        rng = self.rng
        if rng.random() < 0.4:
            divisor = self._pick((0.0, -0.0, 2.0, -4.0))
            return BinOp("/", Lit(self._float_value(), type_),
                         Lit(divisor, type_))
        op = self._pick(("+", "-", "*", "/", "%"))
        return BinOp(op, Lit(self._float_value(), type_),
                     Lit(self._float_value(), type_))
