"""Delta-debugging reducer: shrink a failing kernel to a minimal repro.

Reduction happens at the frontend-AST statement level, *before* lowering:
greedy fixpoint over structural edits (delete a statement, replace a
branch by one of its arms, hoist a loop body out of its loop, shrink a
literal trip count), keeping an edit only when the candidate still fails
the interestingness predicate.  Candidates that no longer lower (e.g. the
hoisted body reads the deleted induction variable) are simply
uninteresting.

Every accepted edit strictly decreases the metric ``(statement count,
sum of literal trip counts)``, so the loop terminates; edits are
enumerated deterministically, so the same failure always reduces to the
same repro.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..frontend import ast
from ..frontend.lower import LoweringError
from ..ir.verifier import VerificationError, verify_module
from .oracle import (ConfigSpec, KernelReport, OracleError, config_specs,
                     execute, run_config, subject_from_kernel)

Interesting = Callable[[ast.KernelDef], bool]


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

def statement_count(stmts: List[ast.Stmt]) -> int:
    total = 0
    for stmt in stmts:
        total += 1
        if isinstance(stmt, ast.If):
            total += statement_count(stmt.then) + statement_count(stmt.els)
        elif isinstance(stmt, (ast.While, ast.For)):
            total += statement_count(stmt.body)
    return total


def _trip_sum(stmts: List[ast.Stmt]) -> int:
    total = 0
    for stmt in stmts:
        if isinstance(stmt, ast.For):
            if isinstance(stmt.stop, ast.Lit) and \
                    isinstance(stmt.stop.value, int):
                total += stmt.stop.value
            total += _trip_sum(stmt.body)
        elif isinstance(stmt, ast.While):
            total += _trip_sum(stmt.body)
        elif isinstance(stmt, ast.If):
            total += _trip_sum(stmt.then) + _trip_sum(stmt.els)
    return total


def _metric(body: List[ast.Stmt]) -> Tuple[int, int]:
    return (statement_count(body), _trip_sum(body))


def block_count(kernel: ast.KernelDef) -> int:
    """Basic blocks of the kernel's unoptimized lowering (repro size)."""
    module = subject_from_kernel(kernel).build()
    func = next(iter(module.functions.values()))
    return len(func.blocks)


# ---------------------------------------------------------------------------
# Edit enumeration
# ---------------------------------------------------------------------------

def _variants(stmts: List[ast.Stmt]) -> List[List[ast.Stmt]]:
    """All one-edit variants of a statement list, deterministic order.

    Statement objects are shared between variants (lowering never mutates
    the AST), so enumeration is cheap even for nested bodies.
    """
    out: List[List[ast.Stmt]] = []
    for i, stmt in enumerate(stmts):
        before, after = stmts[:i], stmts[i + 1:]
        out.append(before + after)  # delete the statement
        if isinstance(stmt, ast.If):
            out.append(before + list(stmt.then) + after)
            if stmt.els:
                out.append(before + list(stmt.els) + after)
            for v in _variants(stmt.then):
                out.append(before + [ast.If(stmt.cond, v, stmt.els)] + after)
            for v in _variants(stmt.els):
                out.append(before + [ast.If(stmt.cond, stmt.then, v)] + after)
        elif isinstance(stmt, ast.While):
            out.append(before + list(stmt.body) + after)
            for v in _variants(stmt.body):
                out.append(before + [ast.While(stmt.cond, v)] + after)
        elif isinstance(stmt, ast.For):
            out.append(before + list(stmt.body) + after)
            for v in _variants(stmt.body):
                out.append(before + [ast.For(stmt.var, stmt.start, stmt.stop,
                                             v, stmt.step)] + after)
            if isinstance(stmt.stop, ast.Lit) and \
                    isinstance(stmt.stop.value, int) and stmt.stop.value > 2:
                shrunk = ast.Lit(2, stmt.stop.type_)
                out.append(before + [ast.For(stmt.var, stmt.start, shrunk,
                                             stmt.body, stmt.step)] + after)
    return out


# ---------------------------------------------------------------------------
# Reduction
# ---------------------------------------------------------------------------

def reduce_kernel(kernel: ast.KernelDef, is_interesting: Interesting,
                  max_attempts: int = 2000) -> ast.KernelDef:
    """Greedy fixpoint reduction of ``kernel`` under ``is_interesting``.

    ``max_attempts`` bounds the number of predicate evaluations (each one
    is a full differential run); the best kernel found so far is returned
    when the budget runs out.
    """
    best = kernel
    best_metric = _metric(best.body)
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for body in _variants(best.body):
            metric = _metric(body)
            if metric >= best_metric:
                continue
            candidate = ast.KernelDef(best.name, best.params, body,
                                      best.ret_type, dict(best.loop_pragmas))
            attempts += 1
            try:
                interesting = is_interesting(candidate)
            except (LoweringError, VerificationError, OracleError):
                continue  # malformed candidate, never a smaller repro
            if interesting:
                best, best_metric = candidate, metric
                progress = True
                break
            if attempts >= max_attempts:
                break
    return best


def failure_matcher(spec: ConfigSpec) -> Interesting:
    """Interesting iff some config with ``spec``'s (config, factor) fails.

    Loop ids shift as statements are deleted, so the match deliberately
    ignores ``loop_id``: the repro must preserve the *kind* of failure,
    not the accidental loop numbering of the original kernel.  Only the
    matching configurations are re-run — the predicate is evaluated once
    per candidate edit, so it must stay cheap.
    """
    def check(kernel: ast.KernelDef) -> bool:
        subject = subject_from_kernel(kernel)
        module = subject.build()
        verify_module(module)
        reference = execute(module)
        for candidate in config_specs(module):
            if candidate.config != spec.config or \
                    candidate.factor != spec.factor:
                continue
            if not run_config(subject, candidate, reference).ok:
                return True
        return False
    return check


def reduce_failure(kernel: ast.KernelDef, spec: ConfigSpec,
                   max_attempts: int = 2000) -> ast.KernelDef:
    """Shrink ``kernel`` while it keeps failing like ``spec``."""
    return reduce_kernel(kernel, failure_matcher(spec), max_attempts)


def first_failure(report: KernelReport) -> Optional[ConfigSpec]:
    """The spec of the report's first failing outcome, if any."""
    for outcome in report.outcomes:
        if not outcome.ok:
            return outcome.spec
    return None
