"""Campaign driver: fan fuzz kernels out over a process pool.

Reuses the sweep engine's worker-count plumbing
(:func:`repro.harness.parallel.resolve_jobs`: ``--jobs`` > ``REPRO_JOBS``
> all cores) and its failure-isolation pattern: a crashing seed is
recorded as a harness error, never kills the campaign.  Results are
deterministic — seeds map to kernels purely, and outcomes are collected
in seed order regardless of completion order.

Each failing configuration is bisected in the worker (cheap relative to
the differential itself), so a campaign report names the offending pass
for every divergence it finds.
"""

from __future__ import annotations

import random
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..harness.parallel import resolve_jobs
from .bisect import bisect_divergence
from .generator import generate_kernel
from .oracle import (LANES, MAX_INSTRUCTIONS, run_differential,
                     subject_from_kernel)


@dataclass
class FailureRecord:
    """One diverging (seed, configuration) pair, with its bisection."""

    seed: int
    name: str
    config: str
    loop_id: Optional[str]
    factor: int
    kind: str                      # mismatch | verifier | crash
    detail: str
    culprit: Optional[str] = None  # pass named by the bisector
    culprit_step: Optional[int] = None

    @property
    def label(self) -> str:
        parts = [self.config]
        if self.loop_id is not None:
            parts.append(self.loop_id)
        if self.factor != 1:
            parts.append(f"u={self.factor}")
        return "/".join(parts)

    def describe(self) -> str:
        where = f" [pass: {self.culprit}, step {self.culprit_step}]" \
            if self.culprit else ""
        return (f"seed {self.seed} {self.label}: {self.kind} — "
                f"{self.detail}{where}")


@dataclass
class CampaignResult:
    """Aggregate outcome of one fuzzing campaign."""

    start_seed: int
    count: int
    lanes: int = LANES
    checked_configs: int = 0
    failures: List[FailureRecord] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)  # harness crashes

    @property
    def ok(self) -> bool:
        return not self.failures and not self.errors

    @property
    def failing_seeds(self) -> List[int]:
        return sorted({f.seed for f in self.failures})


def fuzz_one(seed: int, lanes: int = LANES, bisect: bool = True
             ) -> Tuple[int, List[FailureRecord]]:
    """Generate, differentially test, and (on failure) bisect one seed.

    Returns ``(configs_checked, failures)``.
    """
    kernel = generate_kernel(seed)
    subject = subject_from_kernel(kernel, seed=seed)
    report = run_differential(subject, lanes=lanes)
    failures: List[FailureRecord] = []
    for outcome in report.failures:
        record = FailureRecord(seed, report.name, outcome.spec.config,
                               outcome.spec.loop_id, outcome.spec.factor,
                               outcome.kind, outcome.detail)
        if bisect:
            found = bisect_divergence(subject, outcome.spec, lanes=lanes)
            if found is not None:
                record.culprit = found.culprit
                record.culprit_step = found.step
        failures.append(record)
    return len(report.outcomes), failures


def _worker(payload: Tuple[int, int, bool]
            ) -> Tuple[int, int, List[FailureRecord], Optional[str]]:
    """Top-level (picklable) per-seed worker with failure isolation."""
    seed, lanes, bisect = payload
    # Pool workers are reused across seeds, so any code consulting the
    # global RNGs (``random``/numpy legacy) would otherwise see state that
    # depends on which seeds this worker processed before this one.
    # Re-seeding from the fuzz seed makes ``fuzz run --jobs N`` outcomes
    # independent of worker scheduling (the generator itself already uses
    # its own ``random.Random(seed)``, but pass/harness code must not be
    # able to break determinism through the globals).
    random.seed(seed)
    np.random.seed(seed & 0xFFFFFFFF)
    try:
        checked, failures = fuzz_one(seed, lanes, bisect)
        return seed, checked, failures, None
    except Exception:  # noqa: BLE001 — isolate the seed, keep the campaign
        return seed, 0, [], traceback.format_exc()


def run_campaign(start_seed: int, count: int, jobs: Optional[int] = None,
                 lanes: int = LANES, bisect: bool = True,
                 progress: Optional[Callable[[str], None]] = None
                 ) -> CampaignResult:
    """Differentially fuzz ``count`` seeds starting at ``start_seed``."""
    jobs = resolve_jobs(jobs)
    result = CampaignResult(start_seed, count, lanes)
    payloads = [(seed, lanes, bisect)
                for seed in range(start_seed, start_seed + count)]
    if jobs <= 1 or count <= 1:
        rows = [_worker(p) for p in payloads]
    else:
        chunk = max(1, count // (jobs * 4))
        with ProcessPoolExecutor(max_workers=min(jobs, count)) as pool:
            rows = list(pool.map(_worker, payloads, chunksize=chunk))
    for seed, checked, failures, error in rows:
        result.checked_configs += checked
        result.failures.extend(failures)
        if error is not None:
            result.errors.append(f"seed {seed}: {error}")
        if progress is not None:
            if error is not None:
                progress(f"seed {seed}: harness error")
            for failure in failures:
                progress(failure.describe())
    return result
