"""Regression corpus: reduced fuzz failures persisted as printed IR.

Every reduced repro is written to ``tests/corpus/<name>.ll`` — printed IR
(round-trippable through :mod:`repro.ir.parser`, which strips ``;``
comments) with a one-line JSON metadata header recording where the kernel
came from and what it once broke::

    ; repro-fuzz: {"bug": "fptosi-saturation", "seed": 41, ...}
    define i64 @fuzz41(i64 %seed, f64 %noise) { ... }

``tests/test_fuzz_corpus.py`` re-runs the differential oracle over every
entry on each test run, so a fixed miscompile stays fixed.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

#: Environment override for the corpus directory.
CORPUS_ENV = "REPRO_CORPUS_DIR"

#: Metadata header prefix (the parser discards it as a comment).
META_PREFIX = "; repro-fuzz:"


def default_corpus_dir() -> Path:
    """``tests/corpus`` at the repository root (env-overridable)."""
    env = os.environ.get(CORPUS_ENV)
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "tests" / "corpus"


@dataclass
class CorpusEntry:
    """One persisted regression kernel."""

    name: str
    path: Path
    text: str                       # IR text, metadata header stripped
    meta: Dict = field(default_factory=dict)


def save_regression(ir_text: str, name: str, meta: Optional[Dict] = None,
                    directory: Optional[Path] = None) -> Path:
    """Persist ``ir_text`` as ``<name>.ll`` with a metadata header."""
    directory = Path(directory) if directory is not None \
        else default_corpus_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.ll"
    header = f"{META_PREFIX} {json.dumps(meta or {}, sort_keys=True)}"
    path.write_text(header + "\n" + ir_text.rstrip() + "\n")
    return path


def load_corpus(directory: Optional[Path] = None) -> List[CorpusEntry]:
    """All ``*.ll`` entries, sorted by name; missing directory is empty."""
    directory = Path(directory) if directory is not None \
        else default_corpus_dir()
    entries: List[CorpusEntry] = []
    if not directory.is_dir():
        return entries
    for path in sorted(directory.glob("*.ll")):
        text = path.read_text()
        meta: Dict = {}
        first_line, _, rest = text.partition("\n")
        if first_line.startswith(META_PREFIX):
            try:
                meta = json.loads(first_line[len(META_PREFIX):])
            except ValueError:
                meta = {}
            text = rest
        entries.append(CorpusEntry(path.stem, path, text, meta))
    return entries


def check_corpus(directory: Optional[Path] = None, lanes: int = 32):
    """Differential reports for every corpus entry (for tests and CLI)."""
    from .oracle import run_differential, subject_from_text

    return [run_differential(subject_from_text(e.text, e.name), lanes=lanes)
            for e in load_corpus(directory)]
