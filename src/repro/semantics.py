"""The folder/interpreter value-semantics contract.

Every operation that both the compile-time constant folder
(:mod:`repro.transforms.fold`) and the SIMT interpreter
(:mod:`repro.gpu.machine`) can evaluate must produce *bit-identical*
results, otherwise a pass that folds a value the baseline pipeline leaves
to runtime manifests as a miscompile under differential testing.  This
module is the single source of truth for the semantics where the two
sides historically drifted; both import from here.

The documented contract:

* **Integer arithmetic** wraps two's-complement at the operand width.
  ``sdiv``/``srem`` truncate toward zero and are *exact* over the full
  i64 range (no float round-trip); division by zero yields quotient 0 and
  remainder 0 at runtime and refuses to fold.
* **Shifts** are defined only for amounts in ``[0, width)``.  ``lshr``
  reinterprets the value as unsigned *at its own width* before shifting.
  Constant over-shifts are rejected by the IR verifier; the folder refuses
  them.
* **``fptosi``** saturates: NaN converts to 0, values beyond the target
  range (including ±inf) clamp to the target width's signed min/max, and
  finite in-range values truncate toward zero.  (CUDA's ``cvt.rzi`` has
  the same saturating behaviour; LLVM's poison-on-overflow is replaced by
  a total function so folding is always legal.)
* **``sitofp``/``uitofp``** round via the target format in a single step
  (numpy's correctly-rounded conversion), so folding a huge i64 constant
  matches the runtime conversion bit-for-bit — no double rounding through
  binary64.
* **``fdiv``** is plain IEEE-754 division: the sign of a zero divisor is
  honoured (``x / -0.0`` is ``-inf`` for positive finite ``x``), ``0/0``
  and ``NaN`` operands produce NaN.  ``frem`` follows C ``fmod`` with
  ``frem(x, 0) = frem(±inf, y) = NaN``.
* **Pure math intrinsics** are evaluated with the *same numpy kernels at
  the same storage dtype* on both sides (f32 values use the float32
  routines), including the interpreter's total-function clamps:
  ``sqrt(x<0) = 0``, ``exp`` clamps its argument to ±700, ``log`` clamps
  to ``>= 1e-300``, and ``pow(a, b)`` computes ``|a| ** b``.

``tests/test_fold_and_passes.py`` and the differential fuzzer
(:mod:`repro.fuzz`) keep the two sides honest.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from .ir.types import FloatType, IntType, PointerType, Type

#: numpy implementations of the pure math intrinsics.  The SIMT machine
#: evaluates these over warp vectors; the constant folder evaluates them
#: over 1-element arrays of the same storage dtype, which by construction
#: yields the same bits.  All are run under ``np.errstate(all="ignore")``.
INTRINSIC_IMPLS = {
    "sqrt": lambda a: np.sqrt(np.maximum(a[0], 0.0)),
    "fabs": lambda a: np.abs(a[0]),
    "exp": lambda a: np.exp(np.clip(a[0], -700, 700)),
    "log": lambda a: np.log(np.maximum(a[0], 1e-300)),
    "sin": lambda a: np.sin(a[0]),
    "cos": lambda a: np.cos(a[0]),
    "atan": lambda a: np.arctan(a[0]),
    "floor": lambda a: np.floor(a[0]),
    "pow": lambda a: np.power(np.abs(a[0]), a[1]),
    "fma": lambda a: a[0] * a[1] + a[2],
    "min": lambda a: np.minimum(a[0], a[1]),
    "fmin": lambda a: np.minimum(a[0], a[1]),
    "max": lambda a: np.maximum(a[0], a[1]),
    "fmax": lambda a: np.maximum(a[0], a[1]),
}


def storage_dtype(type_: Type):
    """The numpy dtype a value of ``type_`` occupies in warp registers."""
    if isinstance(type_, IntType):
        return np.bool_ if type_.bits == 1 else np.int64
    if isinstance(type_, FloatType):
        return np.float32 if type_.bits == 32 else np.float64
    if isinstance(type_, PointerType):
        return np.int64
    raise ValueError(f"no storage dtype for {type_!r}")


# ---------------------------------------------------------------------------
# fptosi: saturating float -> signed int conversion
# ---------------------------------------------------------------------------

def fptosi_arrays(value: np.ndarray, to_type: IntType) -> np.ndarray:
    """Saturating truncation of a float vector to ``to_type``'s range.

    NaN -> 0; values beyond the signed range of the target width
    (including ±inf) clamp to min/max; finite in-range values truncate
    toward zero.  The result is returned in the int64 storage
    representation (already within the target width's signed range, so no
    further wrapping is needed).
    """
    lo, hi = to_type.min_signed, to_type.max_signed
    with np.errstate(all="ignore"):
        v = value.astype(np.float64)
        t = np.fix(v)
        t = np.where(np.isnan(v), 0.0, t)
        # float(lo) is a power of two, hence exact; float(hi) may round up
        # to hi + 1 (e.g. 2^63 for i64), in which case t == float(hi)
        # already means "out of range".
        hi_f = float(hi)
        over = (t > hi_f) if int(hi_f) == hi else (t >= hi_f)
        under = t < float(lo)
        safe = np.where(over | under, 0.0, t).astype(np.int64)
        return np.where(over, np.int64(hi),
                        np.where(under, np.int64(lo), safe))


def fptosi_const(value: float, to_type: IntType) -> int:
    """Scalar :func:`fptosi_arrays` (used by the constant folder)."""
    out = fptosi_arrays(np.array([value], dtype=np.float64), to_type)
    return int(out[0])


# ---------------------------------------------------------------------------
# int -> float conversions (single rounding step)
# ---------------------------------------------------------------------------

def int_to_float_const(value: int, unsigned_value: int, signed: bool,
                       to_type: FloatType) -> float:
    """``sitofp``/``uitofp`` of a constant, rounded once via numpy.

    ``value`` is the signed (width-wrapped) payload, ``unsigned_value``
    its unsigned reinterpretation.  Returning ``float(int)`` here would
    double-round huge i64 constants through binary64 on the way to f32;
    numpy's direct conversion matches the interpreter's ``astype``.
    """
    dtype = storage_dtype(to_type)
    if signed:
        out = np.array([value], dtype=np.int64).astype(dtype)
    else:
        out = np.array([unsigned_value], dtype=np.uint64).astype(dtype)
    return float(out[0])


# ---------------------------------------------------------------------------
# IEEE float division / remainder
# ---------------------------------------------------------------------------

def fdiv_const(a: float, b: float) -> float:
    """IEEE-754 division of two finite-or-not doubles (``np.divide``).

    Unlike Python's ``/`` this is total: a zero divisor produces an
    infinity whose sign is the XOR of the operand signs (``-0.0``
    matters), and ``0/0`` or NaN operands produce NaN.
    """
    import math
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        return math.copysign(math.inf, a) * math.copysign(1.0, b)
    return a / b


def frem_const(a: float, b: float) -> float:
    """C ``fmod`` semantics, total: ``frem(x, 0)`` and ``frem(±inf, y)``
    are NaN (what ``np.fmod`` computes at runtime)."""
    import math
    if b == 0.0 or math.isinf(a):
        return math.nan
    return math.fmod(a, b)


# ---------------------------------------------------------------------------
# Pure intrinsic evaluation over constants
# ---------------------------------------------------------------------------

def eval_intrinsic_const(name: str, args: Sequence[Union[int, float]],
                         arg_types: Sequence[Type]) -> Optional[np.generic]:
    """Evaluate one pure math intrinsic over scalar constants.

    Arguments are lifted to 1-element arrays of their storage dtype and
    run through the exact numpy kernel the interpreter uses, so f32
    transcendentals fold to the float32 routine's bits, not a
    double-rounded libm value.  Returns a numpy scalar, or None when the
    intrinsic has no pure implementation here (e.g. SIMT geometry).
    """
    impl = INTRINSIC_IMPLS.get(name)
    if impl is None:
        return None
    arrays = [np.array([v], dtype=storage_dtype(t))
              for v, t in zip(args, arg_types)]
    with np.errstate(all="ignore"):
        out = impl(arrays)
    return out[0]
