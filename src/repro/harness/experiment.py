"""Experiment runner: the measurement methodology of the paper's Section IV-B.

One *cell* = (application, configuration, loop, unroll factor).  For each
cell the runner compiles the benchmark module under that pipeline, executes
the workload on the SIMT machine, differentially checks outputs against the
baseline (transforms must be semantics-preserving), and records kernel
cycles, code size (the end product of compilation, like the paper's binary
sizes), and wall-clock compile time.

Per the paper, the per-loop configs apply the transform to *one loop at a
time*; the heuristic config transforms whatever the heuristic selects.
Simulated kernel cycles are deterministic; the 20-run mean +- RSD of
Table I comes from the seeded noise model in :mod:`repro.harness.stats`.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..bench.base import Benchmark
from ..gpu.counters import Counters
from ..obs import session as obs
from ..transforms.heuristic import HeuristicParams
from ..transforms.pass_manager import PassStatistics
from ..transforms.pipeline import CompileResult, compile_module

UNROLL_FACTORS = (2, 4, 8)


@dataclass
class Cell:
    """Result of one measured configuration."""

    app: str
    config: str
    loop_id: Optional[str]
    factor: int
    cycles: float
    code_size: int
    compile_seconds: float
    counters: Counters
    outputs_match_baseline: bool
    heuristic_decisions: list = field(default_factory=list)
    #: Compilation hit its time budget (paper: ccs compile timeouts).
    #: Timed-out cells are excluded from the figures, as in the paper.
    timed_out: bool = False
    #: Traceback text when the cell crashed instead of completing (parallel
    #: sweeps isolate per-cell failures rather than killing the sweep).
    error: Optional[str] = None

    def speedup_over(self, baseline: "Cell") -> float:
        # Timed-out cells were never simulated (cycles == inf): they must
        # not report a meaningful speedup regardless of what their cycles
        # field holds, matching the paper's exclusion of timeout points.
        if self.timed_out or baseline.timed_out:
            return 0.0
        if self.cycles <= 0 or not math.isfinite(self.cycles):
            return 0.0
        return baseline.cycles / self.cycles

    def size_ratio_over(self, baseline: "Cell") -> float:
        if baseline.code_size <= 0:
            return 1.0
        return self.code_size / baseline.code_size

    def compile_ratio_over(self, baseline: "Cell") -> float:
        if baseline.compile_seconds <= 0:
            return 1.0
        return self.compile_seconds / baseline.compile_seconds


class ExperimentRunner:
    """Runs and caches experiment cells for one or more benchmarks."""

    def __init__(self, heuristic: Optional[HeuristicParams] = None,
                 max_instructions: int = 20_000,
                 compile_timeout: Optional[float] = 20.0,
                 verify_each: bool = False,
                 engine: Optional[str] = None,
                 workload_scale: int = 1,
                 tuned_dir: Optional[Path] = None,
                 sim_index_dir: Optional[Path] = None) -> None:
        self.heuristic = heuristic or HeuristicParams()
        self.max_instructions = max_instructions
        self.compile_timeout = compile_timeout
        self.verify_each = verify_each
        #: Execution engine for every simulation this runner performs.
        #: Engines are bit-identical (cycles, counters, outputs), so the
        #: choice never affects results — only sweep wall-clock — and the
        #: persistent cell cache deliberately does not key on it.
        self.engine = engine
        #: ``> 1`` shrinks every launch geometry (autotuner screening
        #: rounds); scaled cells are internally consistent — baseline and
        #: candidates run the same reduced workload.
        self.workload_scale = workload_scale
        #: Where ``config == "tuned"`` resolves its per-loop decisions
        #: (None = the repo-level ``results/tuned`` directory).
        self.tuned_dir = tuned_dir
        #: Where ``config == "predicted"`` reads the similarity index
        #: (None = the repo-level ``results/.simindex`` directory).
        self.sim_index_dir = sim_index_dir
        #: Memoized per-app similarity predictions (prediction is pure
        #: given the module and the index, so one resolve serves every
        #: ``predicted`` cell of an app).
        self._predictions: Dict[str, object] = {}
        self._cache: Dict[Tuple[str, str, Optional[str], int], Cell] = {}
        self._baseline_outputs: Dict[str, Dict[str, np.ndarray]] = {}
        #: Outputs of the *unoptimized* module, the baseline anchor's
        #: reference (cached so the raw module is built and run only once).
        self._raw_outputs: Dict[str, Dict[str, np.ndarray]] = {}
        #: Wall-clock per phase across every cell this runner computed
        #: (``python -m repro.harness.summary --profile`` reports these).
        self.phase_seconds: Dict[str, float] = {
            "compile": 0.0, "simulate": 0.0, "verify": 0.0}
        #: Per-pass compile-time statistics aggregated over all cells.
        self.pass_stats = PassStatistics()

    # -- cells -----------------------------------------------------------
    def cell(self, bench: Benchmark, config: str,
             loop_id: Optional[str] = None, factor: int = 1) -> Cell:
        key = (bench.name, config, loop_id, factor)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._run(bench, config, loop_id, factor)
        self._cache[key] = result
        return result

    def baseline(self, bench: Benchmark) -> Cell:
        return self.cell(bench, "baseline")

    def heuristic_cell(self, bench: Benchmark) -> Cell:
        return self.cell(bench, "uu_heuristic")

    def tuned_cell(self, bench: Benchmark) -> Cell:
        return self.cell(bench, "tuned")

    def predicted_cell(self, bench: Benchmark) -> Cell:
        return self.cell(bench, "predicted")

    def _resolve_tuned(self, app: str):
        """Decisions for ``config == "tuned"``, warning on fallback."""
        # Lazy import: tune.store is stdlib-light but lives above the
        # harness in the package layering.
        from ..tune.store import resolve_decisions

        decisions, why = resolve_decisions(app, self.tuned_dir)
        if decisions is None:
            warnings.warn(
                f"{app}: no usable tuned config ({why}); "
                "falling back to the static heuristic",
                RuntimeWarning, stacklevel=3)
            # A typed ``missed`` remark (not just the RuntimeWarning):
            # the fallback is a lost optimization opportunity, stamped
            # with the staleness reason so remark consumers can tell a
            # never-tuned app from a schema/timing-staled one.
            obs.remark("missed", "tuned-uu", app,
                       f"tuned config unusable ({why}); heuristic fallback",
                       reason=why)
        return decisions

    def _predict(self, bench: Benchmark):
        """Memoized similarity prediction for ``bench`` (no telemetry).

        Both the cache-key fingerprint and the measurement path need the
        prediction; computing it here keeps the two trivially consistent.
        Telemetry (remarks + metrics) is deferred to
        :meth:`predicted_decisions` — the measurement path — so ``-j1``
        and ``-jN`` sweeps emit it exactly once, in the worker that
        compiles the cell.
        """
        if bench.name not in self._predictions:
            from ..similarity.index import SimilarityIndex
            from ..similarity.predict import predict_bench

            root = Path(self.sim_index_dir) if self.sim_index_dir else None
            self._predictions[bench.name] = predict_bench(
                bench, SimilarityIndex(root), emit=False)
        return self._predictions[bench.name]

    def predicted_decisions(self, bench: Benchmark):
        """Decisions for ``config == "predicted"``, warning on fallback."""
        from ..similarity.predict import emit_prediction_telemetry

        prediction = self._predict(bench)
        emit_prediction_telemetry(prediction)
        if prediction.fallback:
            warnings.warn(
                f"{bench.name}: no usable similarity-index evidence; "
                "falling back to the static heuristic",
                RuntimeWarning, stacklevel=3)
            return None
        return list(prediction.decisions)

    def _run(self, bench: Benchmark, config: str, loop_id: Optional[str],
             factor: int) -> Cell:
        # Remarks emitted while this cell compiles/runs carry its sweep
        # coordinates; the cell itself becomes one trace span wrapping the
        # per-pass and per-phase spans recorded underneath.
        label = f"{bench.name}/{config}"
        if loop_id is not None:
            label += f"/{loop_id}x{factor}"
        with obs.context(app=bench.name, config=config, sweep_loop=loop_id,
                         sweep_factor=factor if loop_id else None), \
                obs.span(label, cat="cell"):
            return self._measure(bench, config, loop_id, factor)

    def _measure(self, bench: Benchmark, config: str, loop_id: Optional[str],
                 factor: int) -> Cell:
        # One build serves both the anchor reference and the compiled cell:
        # the pipeline optimizes the module in place, so the unoptimized
        # reference run must happen first (its outputs are cached — later
        # baseline recomputations skip it entirely).
        module = bench.build_module()
        if config == "baseline" and bench.name not in self._raw_outputs:
            start = time.perf_counter()
            with obs.span("simulate-raw"):
                raw_outputs, _ = bench.run(module, engine=self.engine,
                                           scale=self.workload_scale)
            self.phase_seconds["simulate"] += time.perf_counter() - start
            self._raw_outputs[bench.name] = raw_outputs
        tuned_decisions = None
        if config == "tuned":
            tuned_decisions = self._resolve_tuned(bench.name)
        elif config == "predicted":
            tuned_decisions = self.predicted_decisions(bench)
        with obs.span("compile"):
            compiled: CompileResult = compile_module(
                module, config, loop_id=loop_id, factor=factor,
                heuristic=self.heuristic,
                max_instructions=self.max_instructions,
                timeout_seconds=self.compile_timeout,
                verify_each=self.verify_each,
                tuned=tuned_decisions)
        self.phase_seconds["compile"] += compiled.compile_seconds
        self.pass_stats.merge(compiled.pass_stats)
        if compiled.timed_out:
            # The paper excluded compile-timeout points from its figures;
            # we do not simulate them either.
            return Cell(app=bench.name, config=config, loop_id=loop_id,
                        factor=factor, cycles=float("inf"),
                        code_size=compiled.code_size,
                        compile_seconds=compiled.compile_seconds,
                        counters=Counters(), outputs_match_baseline=True,
                        heuristic_decisions=compiled.heuristic_decisions,
                        timed_out=True)
        start = time.perf_counter()
        with obs.span("simulate"):
            outputs, counters = bench.run(module, engine=self.engine,
                                          scale=self.workload_scale)
        self.phase_seconds["simulate"] += time.perf_counter() - start

        start = time.perf_counter()
        matches = True
        if config == "baseline":
            # Anchor correctness: the baseline pipeline itself must agree
            # with the unoptimized module's behaviour.
            raw_outputs = self._raw_outputs[bench.name]
            matches = all(np.array_equal(outputs[name], raw_outputs[name])
                          for name in outputs)
            self._baseline_outputs[bench.name] = outputs
        else:
            reference = self._baseline_outputs.get(bench.name)
            if reference is None:
                self.baseline(bench)
                reference = self._baseline_outputs[bench.name]
            matches = all(
                np.array_equal(outputs[name], reference[name])
                for name in outputs)
        self.phase_seconds["verify"] += time.perf_counter() - start

        return Cell(
            app=bench.name,
            config=config,
            loop_id=loop_id,
            factor=factor,
            cycles=counters.cycles,
            code_size=compiled.code_size,
            compile_seconds=compiled.compile_seconds,
            counters=counters,
            outputs_match_baseline=matches,
            heuristic_decisions=compiled.heuristic_decisions,
        )

    # -- sweeps -----------------------------------------------------------
    def per_loop_cells(self, bench: Benchmark, config: str,
                       factors: Tuple[int, ...] = UNROLL_FACTORS
                       ) -> List[Cell]:
        """The paper's one-loop-at-a-time sweep for one config."""
        cells = []
        for loop_id in bench.loop_ids():
            if config == "unmerge":
                cells.append(self.cell(bench, "unmerge", loop_id, 1))
            else:
                for factor in factors:
                    cells.append(self.cell(bench, config, loop_id, factor))
        return cells

    def full_sweep(self, bench: Benchmark) -> Dict[str, List[Cell]]:
        """Everything Figures 6-8 need for one application."""
        return {
            "baseline": [self.baseline(bench)],
            "uu": self.per_loop_cells(bench, "uu"),
            "unroll": self.per_loop_cells(bench, "unroll"),
            "unmerge": self.per_loop_cells(bench, "unmerge"),
            "uu_heuristic": [self.heuristic_cell(bench)],
        }
