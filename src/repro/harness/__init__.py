"""Experiment harness regenerating the paper's Table I and Figures 6-8."""

from .experiment import Cell, ExperimentRunner, UNROLL_FACTORS
from .cache import CellCache
from .parallel import CellSpec, ParallelRunner, sweep_specs
from .stats import geomean, mean_and_rsd, median, relative_std, simulate_runs
from . import fig6, fig7, fig8, figures_svg, indepth, svg, table1
from .summary import HeuristicSummary, heuristic_summary

__all__ = [
    "Cell", "ExperimentRunner", "UNROLL_FACTORS",
    "CellCache", "CellSpec", "ParallelRunner", "sweep_specs",
    "geomean", "median", "relative_std", "simulate_runs", "mean_and_rsd",
    "table1", "fig6", "fig7", "fig8", "indepth", "svg", "figures_svg",
    "HeuristicSummary", "heuristic_summary",
]
