"""Figure 7: u&u vs unroll vs unmerge, per application and unroll factor.

For each application and factor, the figure reports the best per-loop
speedup each configuration achieves (the paper plots grouped bars per
application).  ``unmerge`` has no factor (it is u&u with factor 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..bench import all_benchmarks
from ..bench.base import Benchmark
from .experiment import UNROLL_FACTORS, ExperimentRunner
from .parallel import prefetch_if_parallel


@dataclass
class Fig7Row:
    app: str
    factor: int
    uu_speedup: float
    unroll_speedup: float
    unmerge_speedup: float   # Factor-independent; repeated per row.
    #: Empirically-tuned pipeline (factor-independent; repeated per row).
    #: Falls back to the heuristic when no tuned file is usable, so this
    #: column renders with or without ``repro tune`` having run.
    tuned_speedup: float = 1.0


def series(runner: Optional[ExperimentRunner] = None,
           benches: Optional[List[Benchmark]] = None) -> List[Fig7Row]:
    runner = runner or ExperimentRunner()
    benches = benches if benches is not None else all_benchmarks()
    prefetch_if_parallel(runner, benches,
                         configs=("baseline", "uu", "unroll", "unmerge",
                                  "tuned"))
    rows: List[Fig7Row] = []
    for bench in benches:
        base = runner.baseline(bench)
        loop_ids = bench.loop_ids()
        unmerge_best = max(
            (runner.cell(bench, "unmerge", lid, 1).speedup_over(base)
             for lid in loop_ids), default=1.0)
        tuned = runner.cell(bench, "tuned").speedup_over(base)
        for factor in UNROLL_FACTORS:
            uu_best = max(
                (runner.cell(bench, "uu", lid, factor).speedup_over(base)
                 for lid in loop_ids), default=1.0)
            unroll_best = max(
                (runner.cell(bench, "unroll", lid, factor).speedup_over(base)
                 for lid in loop_ids), default=1.0)
            rows.append(Fig7Row(bench.name, factor, uu_best, unroll_best,
                                unmerge_best, tuned))
    return rows


def format_figure(rows: List[Fig7Row]) -> str:
    lines = ["Fig 7 — best per-loop speedup: u&u vs unroll vs unmerge "
             "(+ tuned)"]
    header = (f"{'App':<16} {'u':>3} {'u&u':>8} {'unroll':>8} "
              f"{'unmerge':>8} {'tuned':>8}")
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        lines.append(f"{r.app:<16} {r.factor:>3} {r.uu_speedup:>7.3f}x "
                     f"{r.unroll_speedup:>7.3f}x {r.unmerge_speedup:>7.3f}x "
                     f"{r.tuned_speedup:>7.3f}x")
    return "\n".join(lines)


def main() -> None:
    print(format_figure(series()))


if __name__ == "__main__":
    main()
