"""Figure 6: speedup (6a), code size (6b) and compile time (6c) of u&u.

Each figure plots, per application: one point per (loop, unroll factor in
{2,4,8}) plus the heuristic's whole-application value — all relative to the
-O3 baseline.  The text renderer prints one row per point; ``series()``
returns the structured data for the pytest-benchmark harness and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..bench import all_benchmarks
from ..bench.base import Benchmark
from .experiment import UNROLL_FACTORS, Cell, ExperimentRunner
from .parallel import prefetch_if_parallel


@dataclass
class Fig6Point:
    app: str
    loop_id: Optional[str]      # None for the heuristic point.
    factor: Optional[int]       # None for the heuristic point.
    speedup: float              # Fig 6a.
    size_ratio: float           # Fig 6b.
    compile_ratio: float        # Fig 6c.
    outputs_ok: bool


def series(runner: Optional[ExperimentRunner] = None,
           benches: Optional[List[Benchmark]] = None) -> List[Fig6Point]:
    runner = runner or ExperimentRunner()
    benches = benches if benches is not None else all_benchmarks()
    prefetch_if_parallel(runner, benches,
                         configs=("baseline", "uu", "uu_heuristic"))
    points: List[Fig6Point] = []
    for bench in benches:
        base = runner.baseline(bench)
        for loop_id in bench.loop_ids():
            for factor in UNROLL_FACTORS:
                cell = runner.cell(bench, "uu", loop_id, factor)
                points.append(Fig6Point(
                    bench.name, loop_id, factor,
                    cell.speedup_over(base),
                    cell.size_ratio_over(base),
                    cell.compile_ratio_over(base),
                    cell.outputs_match_baseline))
        heur = runner.heuristic_cell(bench)
        points.append(Fig6Point(
            bench.name, None, None,
            heur.speedup_over(base),
            heur.size_ratio_over(base),
            heur.compile_ratio_over(base),
            heur.outputs_match_baseline))
    return points


def format_figure(points: List[Fig6Point], metric: str) -> str:
    """Render one of the three sub-figures as text.

    ``metric`` is ``"speedup"`` (6a), ``"size_ratio"`` (6b) or
    ``"compile_ratio"`` (6c).
    """
    titles = {"speedup": "Fig 6a — u&u speedup over baseline",
              "size_ratio": "Fig 6b — u&u code size increase over baseline",
              "compile_ratio":
              "Fig 6c — u&u compile time increase over baseline"}
    lines = [titles[metric]]
    header = f"{'App':<16} {'Loop':<20} {'u':>4} {'value':>9}"
    lines.append(header)
    lines.append("-" * len(header))
    for p in points:
        loop = p.loop_id or "(heuristic)"
        factor = str(p.factor) if p.factor else "-"
        value = getattr(p, metric)
        lines.append(f"{p.app:<16} {loop:<20} {factor:>4} {value:>8.3f}x")
    return "\n".join(lines)


def main() -> None:
    points = series()
    for metric in ("speedup", "size_ratio", "compile_ratio"):
        print(format_figure(points, metric))
        print()


if __name__ == "__main__":
    main()
