"""Statistics helpers for the harness (medians, RSD, geomean, noise)."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np


def median(values: Sequence[float]) -> float:
    return float(np.median(np.asarray(values, dtype=np.float64)))


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return float(math.exp(sum(math.log(v) for v in vals) / len(vals)))


def relative_std(values: Sequence[float]) -> float:
    """Relative standard deviation in percent (Table I's RSD column)."""
    arr = np.asarray(values, dtype=np.float64)
    mean = arr.mean()
    if mean == 0:
        return 0.0
    return float(100.0 * arr.std(ddof=1) / mean)


def simulate_runs(base_ms: float, rsd_percent: float, runs: int = 20,
                  seed: int = 0) -> List[float]:
    """Simulated repeated measurements around a deterministic cycle count.

    The paper reports mean +- RSD over 20 nvprof runs; our cycle counts are
    deterministic, so measurement noise is injected from a seeded lognormal
    whose sigma matches the requested RSD (documented substitution, see
    DESIGN.md).
    """
    rng = np.random.default_rng(seed)
    sigma = max(rsd_percent, 1e-6) / 100.0
    noise = rng.lognormal(mean=0.0, sigma=sigma, size=runs)
    return [float(base_ms * n) for n in noise]


def mean_and_rsd(samples: Sequence[float]) -> Tuple[float, float]:
    arr = np.asarray(samples, dtype=np.float64)
    return float(arr.mean()), relative_std(samples)
