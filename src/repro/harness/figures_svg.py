"""SVG renderings of the paper's figures from harness series data."""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from .fig6 import Fig6Point
from .fig7 import Fig7Row
from .fig8 import ScatterPoint
from .svg import BarGroup, ScatterSeries, grouped_bar_chart, scatter_chart

_FACTORS = (2, 4, 8)


def _finite(value: float) -> Optional[float]:
    return value if math.isfinite(value) and value > 0 else None


def fig6_svg(points: List[Fig6Point], metric: str) -> str:
    """Figures 6a/6b/6c: best per-loop value per app × factor + heuristic."""
    titles = {"speedup": "Fig 6a — u&u speedup over baseline",
              "size_ratio": "Fig 6b — code size increase over baseline",
              "compile_ratio": "Fig 6c — compile time increase over baseline"}
    apps: Dict[str, Dict] = {}
    for p in points:
        entry = apps.setdefault(p.app, {f: None for f in _FACTORS}
                                | {"heuristic": None})
        value = _finite(getattr(p, metric))
        if value is None:
            continue
        if p.factor is None:
            entry["heuristic"] = value
        else:
            best = entry[p.factor]
            entry[p.factor] = value if best is None else max(best, value)
    groups = [BarGroup(app, [entry[2], entry[4], entry[8],
                             entry["heuristic"]])
              for app, entry in apps.items()]
    return grouped_bar_chart(
        groups, ["u=2", "u=4", "u=8", "heuristic"],
        titles[metric], metric.replace("_", " "),
        reference_line=1.0, log_scale=True)


def fig7_svg(rows: List[Fig7Row]) -> str:
    """Figure 7: best u&u / unroll / unmerge / tuned speedup per app."""
    apps: Dict[str, Dict[str, float]] = {}
    for r in rows:
        entry = apps.setdefault(r.app, {"uu": 0.0, "unroll": 0.0,
                                        "unmerge": r.unmerge_speedup,
                                        "tuned": r.tuned_speedup})
        entry["uu"] = max(entry["uu"], r.uu_speedup)
        entry["unroll"] = max(entry["unroll"], r.unroll_speedup)
    groups = [BarGroup(app, [_finite(e["uu"]), _finite(e["unroll"]),
                             _finite(e["unmerge"]), _finite(e["tuned"])])
              for app, e in apps.items()]
    return grouped_bar_chart(
        groups, ["u&u", "unroll", "unmerge", "tuned"],
        "Fig 7 — u&u vs unroll vs unmerge (best per-loop speedup) + tuned",
        "speedup", reference_line=1.0, log_scale=True)


def fig8_svg(points: List[ScatterPoint], comparator: str) -> str:
    """Figures 8a/8b: per-loop scatter against the diagonal."""
    series = []
    for factor in _FACTORS:
        pts = [(p.uu_speedup, p.other_speedup) for p in points
               if p.factor == factor
               and _finite(p.uu_speedup) and _finite(p.other_speedup)]
        if pts:
            series.append(ScatterSeries(f"u={factor}", pts))
    label = "unroll" if comparator == "unroll" else "unmerge"
    title = ("Fig 8a — u&u vs unroll (per loop)" if comparator == "unroll"
             else "Fig 8b — u&u vs unmerge (per loop)")
    return scatter_chart(series, title, "u&u speedup",
                         f"{label} speedup", diagonal=True)
