"""Section V in-depth analyses: counter-level comparisons for the four
case-study applications (XSBench, rainflow, complex, bezier-surface).

Each function returns a dictionary of the nvprof-style metrics the paper
quotes, for the baseline and the transformed build of the named loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..bench import benchmark_by_name
from .experiment import Cell, ExperimentRunner


@dataclass
class InDepthComparison:
    app: str
    loop_id: str
    factor: int
    baseline: Dict[str, float]
    transformed: Dict[str, float]

    def reduction(self, metric: str) -> float:
        """Percent reduction of a counter (positive = fewer after u&u)."""
        before = self.baseline.get(metric, 0.0)
        after = self.transformed.get(metric, 0.0)
        if before == 0:
            return 0.0
        return 100.0 * (before - after) / before

    def ratio(self, metric: str) -> float:
        before = self.baseline.get(metric, 0.0)
        after = self.transformed.get(metric, 0.0)
        if before == 0:
            return 0.0
        return after / before

    @property
    def speedup(self) -> float:
        if self.transformed["cycles"] == 0:
            return 0.0
        return self.baseline["cycles"] / self.transformed["cycles"]


def compare(app: str, loop_id: str, factor: int,
            runner: Optional[ExperimentRunner] = None,
            config: str = "uu") -> InDepthComparison:
    runner = runner or ExperimentRunner()
    bench = benchmark_by_name(app)
    base = runner.baseline(bench)
    cell = runner.cell(bench, config, loop_id, factor)
    return InDepthComparison(
        app=app, loop_id=loop_id, factor=factor,
        baseline=base.counters.summary(),
        transformed=cell.counters.summary())


def xsbench_analysis(runner: Optional[ExperimentRunner] = None,
                     factor: int = 8) -> InDepthComparison:
    """Paper: inst_misc -55%, IPC x1.88, WEE 62.9% -> 18.9% at factor 8."""
    return compare("XSBench", "grid_search:0", factor, runner)


def rainflow_analysis(runner: Optional[ExperimentRunner] = None,
                      factor: int = 4) -> InDepthComparison:
    """Paper: inst_misc -77%, inst_control -45%, gld -17%, IPC x2.04."""
    return compare("rainflow", "rainflow_count:0", factor, runner)


def complex_analysis(runner: Optional[ExperimentRunner] = None,
                     factor: int = 8) -> InDepthComparison:
    """Paper: WEE 100% -> 19.4%, stall_inst_fetch 3.7% -> 79.6%, 0.11x."""
    return compare("complex", "complex_pow:0", factor, runner)


def bezier_analysis(runner: Optional[ExperimentRunner] = None,
                    factor: int = 2) -> InDepthComparison:
    """Paper Section III-B: ~30% faster loop at factor 2."""
    return compare("bezier-surface", "bezier_blend:0", factor, runner)


def format_comparison(cmp: InDepthComparison) -> str:
    lines = [f"In-depth: {cmp.app} loop {cmp.loop_id} @ u={cmp.factor} "
             f"(speedup {cmp.speedup:.3f}x)"]
    header = f"{'metric':<28} {'baseline':>12} {'u&u':>12} {'change':>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for metric in ("cycles", "inst_misc", "inst_control",
                   "warp_execution_efficiency", "ipc", "stall_inst_fetch",
                   "gld_throughput_gbps"):
        before = cmp.baseline.get(metric, 0.0)
        after = cmp.transformed.get(metric, 0.0)
        change = f"{cmp.ratio(metric):>9.2f}x" if before else "       n/a"
        lines.append(f"{metric:<28} {before:>12.2f} {after:>12.2f} {change}")
    return "\n".join(lines)


def main() -> None:
    runner = ExperimentRunner()
    for fn in (xsbench_analysis, rainflow_analysis, complex_analysis,
               bezier_analysis):
        print(format_comparison(fn(runner)))
        print()


if __name__ == "__main__":
    main()
