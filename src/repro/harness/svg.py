"""Dependency-free SVG chart rendering for the paper's figures.

The paper's artifact emits fig6a.pdf ... fig8b.pdf; matplotlib is not
available here, so this module renders the same figures as standalone SVG:
grouped bar charts (Figures 6a-6c, 7) and scatter plots with a diagonal
reference line (Figures 8a/8b).  The drawing model is deliberately small —
axes, ticks, bars, points, labels — and fully deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Default series colours (colour-blind-safe-ish).
PALETTE = ["#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377"]


def _esc(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


@dataclass
class _Canvas:
    width: int
    height: int
    elements: List[str] = field(default_factory=list)

    def line(self, x1, y1, x2, y2, stroke="#333", width=1.0, dash=None):
        d = f' stroke-dasharray="{dash}"' if dash else ""
        self.elements.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width}"{d}/>')

    def rect(self, x, y, w, h, fill):
        self.elements.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
            f'height="{h:.1f}" fill="{fill}"/>')

    def circle(self, x, y, r, fill, opacity=0.75):
        self.elements.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r:.1f}" fill="{fill}" '
            f'fill-opacity="{opacity}"/>')

    def text(self, x, y, s, size=11, anchor="middle", rotate=None,
             fill="#222"):
        transform = f' transform="rotate({rotate} {x:.1f} {y:.1f})"' \
            if rotate is not None else ""
        self.elements.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'text-anchor="{anchor}" fill="{fill}" '
            f'font-family="sans-serif"{transform}>{_esc(s)}</text>')

    def render(self) -> str:
        body = "\n".join(self.elements)
        return (f'<svg xmlns="http://www.w3.org/2000/svg" '
                f'width="{self.width}" height="{self.height}" '
                f'viewBox="0 0 {self.width} {self.height}">\n'
                f'<rect width="100%" height="100%" fill="white"/>\n'
                f"{body}\n</svg>\n")


def _nice_ticks(lo: float, hi: float, target: int = 5) -> List[float]:
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(target, 1)
    magnitude = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * magnitude
        if span / step <= target:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-9:
        ticks.append(round(t, 10))
        t += step
    return ticks


@dataclass
class BarGroup:
    """One x-axis group (e.g. an application) with one value per series."""

    label: str
    values: List[Optional[float]]   # None = missing (e.g. timeout).


def grouped_bar_chart(groups: Sequence[BarGroup], series_names: List[str],
                      title: str, ylabel: str,
                      reference_line: Optional[float] = 1.0,
                      width: int = 960, height: int = 420,
                      log_scale: bool = False) -> str:
    """Render a grouped bar chart (Figures 6a-6c, 7) as SVG text."""
    margin_l, margin_r, margin_t, margin_b = 60, 20, 40, 110
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    canvas = _Canvas(width, height)

    values = [v for g in groups for v in g.values if v is not None]
    if not values:
        values = [1.0]
    if log_scale:
        lo = min(min(values), reference_line or min(values)) / 1.3
        hi = max(max(values), reference_line or max(values)) * 1.3
        to_y = lambda v: margin_t + plot_h * (
            1 - (math.log(v) - math.log(lo)) /
            (math.log(hi) - math.log(lo)))
        ticks = [t for t in (0.1, 0.25, 0.5, 1, 2, 4, 8, 16, 32)
                 if lo <= t <= hi]
    else:
        lo = 0.0
        hi = max(values + ([reference_line] if reference_line else [])) * 1.1
        to_y = lambda v: margin_t + plot_h * (1 - (v - lo) / (hi - lo))
        ticks = _nice_ticks(lo, hi)

    # Axes and ticks.
    canvas.line(margin_l, margin_t, margin_l, margin_t + plot_h)
    canvas.line(margin_l, margin_t + plot_h, margin_l + plot_w,
                margin_t + plot_h)
    for t in ticks:
        y = to_y(t)
        canvas.line(margin_l - 4, y, margin_l, y)
        canvas.line(margin_l, y, margin_l + plot_w, y, stroke="#ddd",
                    width=0.5)
        canvas.text(margin_l - 8, y + 4, f"{t:g}", anchor="end", size=10)
    canvas.text(16, margin_t + plot_h / 2, ylabel, rotate=-90, size=12)
    canvas.text(width / 2, 20, title, size=14)

    # Bars.
    n_groups = max(len(groups), 1)
    n_series = max(len(series_names), 1)
    group_w = plot_w / n_groups
    bar_w = group_w * 0.8 / n_series
    base_y = to_y(lo if not log_scale else max(lo, min(values)))
    zero_y = margin_t + plot_h
    for gi, group in enumerate(groups):
        gx = margin_l + gi * group_w + group_w * 0.1
        for si, value in enumerate(group.values):
            if value is None:
                continue
            x = gx + si * bar_w
            y = to_y(value)
            canvas.rect(x, min(y, zero_y), bar_w * 0.92,
                        abs(zero_y - y), PALETTE[si % len(PALETTE)])
        canvas.text(margin_l + gi * group_w + group_w / 2,
                    margin_t + plot_h + 14, group.label, size=10,
                    rotate=35)

    if reference_line is not None and (log_scale or reference_line <= hi):
        y = to_y(reference_line)
        canvas.line(margin_l, y, margin_l + plot_w, y, stroke="#cc3311",
                    width=1.0, dash="5,3")

    # Legend.
    lx = margin_l
    ly = height - 20
    for si, name in enumerate(series_names):
        canvas.rect(lx, ly - 10, 12, 12, PALETTE[si % len(PALETTE)])
        canvas.text(lx + 18, ly, name, anchor="start", size=11)
        lx += 18 + 8 * len(name) + 24
    return canvas.render()


@dataclass
class ScatterSeries:
    name: str
    points: List[Tuple[float, float]]


def scatter_chart(series: Sequence[ScatterSeries], title: str,
                  xlabel: str, ylabel: str, diagonal: bool = True,
                  width: int = 520, height: int = 520) -> str:
    """Render a scatter plot with a diagonal (Figures 8a/8b) as SVG text."""
    margin = 60
    plot = min(width, height) - 2 * margin
    canvas = _Canvas(width, height)

    xs = [p[0] for s in series for p in s.points] or [1.0]
    ys = [p[1] for s in series for p in s.points] or [1.0]
    lo = min(min(xs), min(ys), 1.0) * 0.9
    hi = max(max(xs), max(ys), 1.0) * 1.1

    def to_xy(x, y):
        fx = (x - lo) / (hi - lo)
        fy = (y - lo) / (hi - lo)
        return margin + fx * plot, margin + plot * (1 - fy)

    canvas.line(margin, margin, margin, margin + plot)
    canvas.line(margin, margin + plot, margin + plot, margin + plot)
    for t in _nice_ticks(lo, hi):
        x, y = to_xy(t, t)
        canvas.line(x, margin + plot, x, margin + plot + 4)
        canvas.text(x, margin + plot + 16, f"{t:g}", size=10)
        canvas.line(margin - 4, y, margin, y)
        canvas.text(margin - 8, y + 4, f"{t:g}", anchor="end", size=10)
    if diagonal:
        x1, y1 = to_xy(lo, lo)
        x2, y2 = to_xy(hi, hi)
        canvas.line(x1, y1, x2, y2, stroke="#cc3311", width=1.0, dash="4,3")

    for si, s in enumerate(series):
        colour = PALETTE[si % len(PALETTE)]
        for x, y in s.points:
            px, py = to_xy(x, y)
            canvas.circle(px, py, 3.5, colour)

    canvas.text(width / 2, 22, title, size=14)
    canvas.text(width / 2, height - 10, xlabel, size=12)
    canvas.text(14, height / 2, ylabel, rotate=-90, size=12)
    lx = margin
    for si, s in enumerate(series):
        canvas.circle(lx, 36, 4, PALETTE[si % len(PALETTE)])
        canvas.text(lx + 10, 40, s.name, anchor="start", size=11)
        lx += 10 + 8 * len(s.name) + 20
    return canvas.render()
