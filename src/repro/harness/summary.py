"""Aggregate summary: the paper's headline geomeans.

The paper (Section IV): "The geometric means for speedup, code size and
compile time increase over all applications for the heuristic are 1.05x,
1.7x and 1.18x respectively."  This module computes our equivalents.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from ..bench import all_benchmarks
from ..bench.base import Benchmark
from ..gpu.counters import CATEGORIES, N_CATEGORIES
from .experiment import ExperimentRunner
from .parallel import ParallelRunner, prefetch_if_parallel
from .stats import geomean


@dataclass
class HeuristicSummary:
    """Geomeans of the heuristic configuration over all applications."""

    speedup: float
    size_ratio: float
    compile_ratio: float
    improved: int
    total: int

    #: The paper's values, for side-by-side reporting.
    PAPER_SPEEDUP = 1.05
    PAPER_SIZE = 1.7
    PAPER_COMPILE = 1.18

    def format(self) -> str:
        return (
            "Heuristic u&u geomeans over all applications "
            "(paper in parentheses):\n"
            f"  speedup       {self.speedup:.3f}x  "
            f"({self.PAPER_SPEEDUP:.2f}x)\n"
            f"  code size     {self.size_ratio:.3f}x  "
            f"({self.PAPER_SIZE:.2f}x)\n"
            f"  compile time  {self.compile_ratio:.3f}x  "
            f"({self.PAPER_COMPILE:.2f}x)\n"
            f"  improved      {self.improved}/{self.total} applications "
            f"(paper: 13/16)")


def heuristic_summary(runner: Optional[ExperimentRunner] = None,
                      benches: Optional[List[Benchmark]] = None
                      ) -> HeuristicSummary:
    runner = runner or ExperimentRunner()
    benches = benches if benches is not None else all_benchmarks()
    prefetch_if_parallel(runner, benches,
                         configs=("baseline", "uu_heuristic"))
    speedups, sizes, compiles = [], [], []
    improved = 0
    for bench in benches:
        base = runner.baseline(bench)
        heur = runner.heuristic_cell(bench)
        s = heur.speedup_over(base)
        speedups.append(s)
        sizes.append(heur.size_ratio_over(base))
        compiles.append(heur.compile_ratio_over(base))
        if s > 1.0:
            improved += 1
    return HeuristicSummary(
        speedup=geomean(speedups),
        size_ratio=geomean(sizes),
        compile_ratio=geomean(compiles),
        improved=improved,
        total=len(benches),
    )


@dataclass
class TunedAppRow:
    """One application's heuristic-vs-tuned comparison."""

    app: str
    heuristic_speedup: float
    tuned_speedup: float
    #: None when a persisted tuned config was applied; otherwise why the
    #: ``tuned`` pipeline fell back to the heuristic (missing, stale-...).
    fallback_reason: Optional[str]


@dataclass
class TunedSummary:
    """Per-app and geomean comparison of ``tuned`` vs ``uu_heuristic``."""

    rows: List[TunedAppRow]
    geomean_heuristic: float
    geomean_tuned: float

    @property
    def tuned_apps(self) -> int:
        return sum(1 for r in self.rows if r.fallback_reason is None)

    def format(self) -> str:
        lines = ["Empirically tuned pipeline vs static heuristic "
                 "(speedup over baseline):"]
        lines.append(f"  {'app':<16} {'heuristic':>10} {'tuned':>10}")
        for r in self.rows:
            note = ""
            if r.fallback_reason is not None:
                note = f"  (fallback: {r.fallback_reason})"
            lines.append(f"  {r.app:<16} {r.heuristic_speedup:>9.3f}x "
                         f"{r.tuned_speedup:>9.3f}x{note}")
        lines.append(f"  {'geomean':<16} {self.geomean_heuristic:>9.3f}x "
                     f"{self.geomean_tuned:>9.3f}x")
        lines.append(f"  tuned configs applied: {self.tuned_apps}/"
                     f"{len(self.rows)} applications "
                     "(fallbacks use the static heuristic; "
                     "run `repro tune --all` to search)")
        return "\n".join(lines)


def tuned_summary(runner: Optional[ExperimentRunner] = None,
                  benches: Optional[List[Benchmark]] = None,
                  tuned_root: Optional[Path] = None) -> TunedSummary:
    """Compare the persisted-tuned pipeline against the static heuristic.

    ``tuned_root`` should match the runner's ``tuned_dir`` (both default
    to ``results/tuned``); apps without a usable tuned file are reported
    with their fallback reason rather than skipped or crashed on.
    """
    from ..tune.store import load_tuned

    runner = runner or ExperimentRunner()
    benches = benches if benches is not None else all_benchmarks()
    root = tuned_root if tuned_root is not None else \
        getattr(runner, "tuned_dir", None)
    prefetch_if_parallel(runner, benches,
                         configs=("baseline", "uu_heuristic", "tuned"))
    rows: List[TunedAppRow] = []
    for bench in benches:
        base = runner.baseline(bench)
        heur = runner.heuristic_cell(bench)
        tuned = runner.cell(bench, "tuned")
        _, reason = load_tuned(bench.name, root)
        rows.append(TunedAppRow(
            app=bench.name,
            heuristic_speedup=heur.speedup_over(base),
            tuned_speedup=tuned.speedup_over(base),
            fallback_reason=None if reason == "ok" else reason))
    return TunedSummary(
        rows=rows,
        geomean_heuristic=geomean([r.heuristic_speedup for r in rows]),
        geomean_tuned=geomean([r.tuned_speedup for r in rows]))


@dataclass
class TransferAppRow:
    """One application's heuristic / tuned / predicted comparison."""

    app: str
    heuristic_speedup: float
    tuned_speedup: float
    predicted_speedup: float
    #: Loops decided by neighbor transfer (vs heuristic fallback).
    transferred_loops: int
    total_loops: int
    #: True when the whole prediction fell back (empty/unusable index).
    fallback: bool


@dataclass
class TransferSummary:
    """Tuning-transfer scoreboard: predicted vs tuned vs heuristic.

    ``predicted`` is always leave-one-out — the prediction for an app
    never uses that app's own index entry — so its geomean is an honest
    estimate of transfer quality on unseen kernels.
    """

    rows: List[TransferAppRow]
    geomean_heuristic: float
    geomean_tuned: float
    geomean_predicted: float

    def format(self) -> str:
        lines = ["Tuning transfer (speedup over baseline; predicted is "
                 "leave-one-out):"]
        lines.append(f"  {'app':<16} {'heuristic':>10} {'tuned':>10} "
                     f"{'predicted':>10}  transfer")
        for r in self.rows:
            if r.fallback:
                note = "fallback"
            else:
                note = f"{r.transferred_loops}/{r.total_loops} loops"
            lines.append(f"  {r.app:<16} {r.heuristic_speedup:>9.3f}x "
                         f"{r.tuned_speedup:>9.3f}x "
                         f"{r.predicted_speedup:>9.3f}x  {note}")
        lines.append(f"  {'geomean':<16} {self.geomean_heuristic:>9.3f}x "
                     f"{self.geomean_tuned:>9.3f}x "
                     f"{self.geomean_predicted:>9.3f}x")
        return "\n".join(lines)


def transfer_summary(runner: Optional[ExperimentRunner] = None,
                     benches: Optional[List[Benchmark]] = None
                     ) -> TransferSummary:
    """Compare the predicted pipeline against tuned and the heuristic."""
    runner = runner or ExperimentRunner()
    benches = benches if benches is not None else all_benchmarks()
    prefetch_if_parallel(runner, benches,
                         configs=("baseline", "uu_heuristic", "tuned",
                                  "predicted"))
    rows: List[TransferAppRow] = []
    for bench in benches:
        base = runner.baseline(bench)
        heur = runner.heuristic_cell(bench)
        tuned = runner.cell(bench, "tuned")
        predicted = runner.cell(bench, "predicted")
        prediction = runner._predict(bench)
        transferred = sum(1 for lp in prediction.loops
                          if lp.source == "transfer")
        rows.append(TransferAppRow(
            app=bench.name,
            heuristic_speedup=heur.speedup_over(base),
            tuned_speedup=tuned.speedup_over(base),
            predicted_speedup=predicted.speedup_over(base),
            transferred_loops=transferred,
            total_loops=len(prediction.loops),
            fallback=prediction.fallback))
    return TransferSummary(
        rows=rows,
        geomean_heuristic=geomean([r.heuristic_speedup for r in rows]),
        geomean_tuned=geomean([r.tuned_speedup for r in rows]),
        geomean_predicted=geomean([r.predicted_speedup for r in rows]))


def format_profile(runner: ExperimentRunner) -> str:
    """Phase and per-pass timing breakdown of this runner's cells.

    Phase and pass statistics accumulate inside whichever process ran each
    cell; parallel runners ship them home with every worker result and
    merge them (``ParallelRunner._absorb_extras``), so the breakdown is
    complete for ``--jobs N`` sweeps too — the times are then summed
    worker CPU seconds rather than wall clock, and are labelled as such.
    """
    jobs = getattr(runner, "jobs", 1)
    if jobs > 1:
        lines = [f"Harness profile (CPU seconds summed across {jobs} "
                 "workers, this run's cells only):"]
    else:
        lines = ["Harness profile (wall-clock seconds, this run's cells "
                 "only):"]
    total = sum(runner.phase_seconds.values())
    for phase in ("compile", "simulate", "verify"):
        seconds = runner.phase_seconds[phase]
        share = 100.0 * seconds / total if total else 0.0
        lines.append(f"  {phase:<10} {seconds:>8.3f}s  {share:>5.1f}%")
    lines.append(f"  {'total':<10} {total:>8.3f}s")
    stats = runner.pass_stats
    if stats.times:
        lines.append("Per-pass compile time:")
        for name in sorted(stats.times, key=stats.times.get, reverse=True):
            lines.append(
                f"  {name:<24} {stats.times[name]:>8.3f}s  "
                f"{stats.runs.get(name, 0):>5} runs  "
                f"{stats.changes.get(name, 0):>5} changed")
    category_lines = _format_category_cycles(runner)
    if category_lines:
        lines.extend(category_lines)
    region_lines = _format_region_session()
    if region_lines:
        lines.extend(region_lines)
    return "\n".join(lines)


def _format_region_session() -> List[str]:
    """JIT fusion / region-cache counters for this run, when the jit ran.

    Like pass stats, worker counters are folded in by
    ``ParallelRunner._absorb_extras``, so ``-j1`` and ``-jN`` report the
    same totals.  Empty (no lines at all) under non-jit engines.
    """
    from ..gpu.region_cache import session as region_session
    sess = region_session()
    if not sess.any():
        return []
    lines = ["JIT region compilation (this run):"]
    lines.append(f"  {'selections':<14} {sess.selections:>8}   fresh region "
                 "selections (full analysis)")
    lines.append(f"  {'replays':<14} {sess.replays:>8}   plans replayed "
                 "from the region cache")
    lines.append(f"  {'regions':<14} {sess.regions:>8}")
    if sess.fused_segments:
        lines.append(f"  {'fused':<14} {sess.fused_steps:>8}   steps in "
                     f"{sess.fused_segments} segments "
                     f"(max chain {sess.max_chain})")
    lines.append(f"  {'cache':<14} {sess.hits:>8}   hits / "
                 f"{sess.misses} misses / {sess.puts} puts")
    if sess.invalid:
        lines.append(f"  {'stale':<14} {sess.invalid:>8}   plans failed "
                     "replay validation")
    if sess.evictions:
        lines.append(f"  {'evicted':<14} {sess.evictions:>8}   (LRU)")
    return lines


def _format_category_cycles(runner: ExperimentRunner) -> List[str]:
    """Simulated-cycle breakdown by opcode category over this run's cells.

    Sourced from each cell's ``Counters.cat_cycles``, so interpreter (and
    kernel) hot spots — int vs fp vs memory vs control time — are visible
    without an external profiler.  Fetch stalls are charged by the icache
    model, not an opcode category, and are reported as their own row.
    """
    totals = [0.0] * N_CATEGORIES
    fetch = 0.0
    cells = 0
    for cell in runner._cache.values():
        if cell.error is not None or cell.timed_out:
            continue
        for i, value in enumerate(cell.counters.cat_cycles):
            totals[i] += value
        fetch += cell.counters.fetch_stall_cycles
        cells += 1
    grand = sum(totals) + fetch
    if cells == 0 or grand <= 0:
        return []
    lines = [f"Simulated cycles by opcode category ({cells} cells):"]
    rows = sorted(zip(CATEGORIES, totals), key=lambda r: r[1], reverse=True)
    for name, value in rows + [("fetch_stall", fetch)]:
        share = 100.0 * value / grand
        lines.append(f"  {name:<12} {value:>14.1f}  {share:>5.1f}%")
    lines.append(f"  {'total':<12} {grand:>14.1f}")
    return lines


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.summary",
        description="Headline heuristic geomeans (paper Section IV).")
    parser.add_argument(
        "--profile", action="store_true",
        help="also print compile/simulate/verify and per-pass timing")
    parser.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_JOBS or all cores)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore the persistent cell cache")
    args = parser.parse_args(argv)

    # --profile disables the cache (a cache hit skips compilation, so its
    # cell would contribute nothing to the timing breakdown) but keeps the
    # parallel fan-out: workers ship their pass statistics home.
    runner = ParallelRunner(jobs=args.jobs,
                            use_cache=not args.no_cache and
                            not args.profile)
    print(heuristic_summary(runner).format())
    if args.profile:
        print()
        print(format_profile(runner))


if __name__ == "__main__":
    main()
