"""Aggregate summary: the paper's headline geomeans.

The paper (Section IV): "The geometric means for speedup, code size and
compile time increase over all applications for the heuristic are 1.05x,
1.7x and 1.18x respectively."  This module computes our equivalents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..bench import all_benchmarks
from ..bench.base import Benchmark
from .experiment import ExperimentRunner
from .stats import geomean


@dataclass
class HeuristicSummary:
    """Geomeans of the heuristic configuration over all applications."""

    speedup: float
    size_ratio: float
    compile_ratio: float
    improved: int
    total: int

    #: The paper's values, for side-by-side reporting.
    PAPER_SPEEDUP = 1.05
    PAPER_SIZE = 1.7
    PAPER_COMPILE = 1.18

    def format(self) -> str:
        return (
            "Heuristic u&u geomeans over all applications "
            "(paper in parentheses):\n"
            f"  speedup       {self.speedup:.3f}x  "
            f"({self.PAPER_SPEEDUP:.2f}x)\n"
            f"  code size     {self.size_ratio:.3f}x  "
            f"({self.PAPER_SIZE:.2f}x)\n"
            f"  compile time  {self.compile_ratio:.3f}x  "
            f"({self.PAPER_COMPILE:.2f}x)\n"
            f"  improved      {self.improved}/{self.total} applications "
            f"(paper: 13/16)")


def heuristic_summary(runner: Optional[ExperimentRunner] = None,
                      benches: Optional[List[Benchmark]] = None
                      ) -> HeuristicSummary:
    runner = runner or ExperimentRunner()
    benches = benches if benches is not None else all_benchmarks()
    speedups, sizes, compiles = [], [], []
    improved = 0
    for bench in benches:
        base = runner.baseline(bench)
        heur = runner.heuristic_cell(bench)
        s = heur.speedup_over(base)
        speedups.append(s)
        sizes.append(heur.size_ratio_over(base))
        compiles.append(heur.compile_ratio_over(base))
        if s > 1.0:
            improved += 1
    return HeuristicSummary(
        speedup=geomean(speedups),
        size_ratio=geomean(sizes),
        compile_ratio=geomean(compiles),
        improved=improved,
        total=len(benches),
    )
