"""Perf-regression sentinel: append-only history + trend gate.

The ``BENCH_*.json`` files that ``repro bench-interp --json`` and the
perf-smoke benchmark write are point-in-time logs; nothing watched the
*trajectory*.  This module turns them into a gate:

* ``repro perf record`` flattens a BENCH payload into one history
  record — **ratio metrics only** (batched/jit/fused speedups per
  kernel plus their geomeans), never absolute wall-clock throughput,
  so records stay comparable across machines — and appends it to
  ``results/perf/history.jsonl``.
* ``repro perf report`` renders the per-metric trend table.
* ``repro perf check --baseline <ref>`` compares the newest record
  against a baseline (the previous record by default) and exits nonzero
  when any tracked metric regressed beyond a noise threshold.

``benchmarks/test_perf_smoke.py`` wires this in: its bench fixture
appends a record by default and a gate test runs the check against the
committed baseline (``REPRO_PERF_CHECK=0`` disables the gate, e.g. on
throttled CI machines).

Records are data, not registry keys, so — unlike the metrics plane —
they do carry a wall-clock ``recorded_at`` stamp and the environment
provenance from :func:`repro.harness.benchinterp.bench_provenance`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from .stats import geomean

#: Bump when the history record shape changes incompatibly.
PERF_SCHEMA_VERSION = 1

#: Per-kernel ratio metrics lifted from a BENCH payload (all
#: higher-is-better speedups; absolute throughput is machine noise).
RATIO_KEYS = ("batched_speedup", "jit_speedup", "jit_vs_batched",
              "fused_speedup")

#: Default relative drop treated as a regression by ``repro perf check``.
#: 0.08 sits above engine-timing jitter but below the 10% regressions
#: the acceptance gate must catch.
DEFAULT_THRESHOLD = 0.08

#: Escape hatch consulted by the perf-smoke gate.
CHECK_ENV = "REPRO_PERF_CHECK"


def default_history_path() -> Path:
    """``results/perf/history.jsonl`` at the repository root."""
    root = Path(__file__).resolve().parents[3] / "results"
    return root / "perf" / "history.jsonl"


def record_from_bench(payload: Dict, source: Optional[str] = None,
                      extra_metrics: Optional[Dict[str, float]] = None
                      ) -> Dict:
    """Flatten one BENCH payload into a history record.

    Tolerates schema-1 payloads (no provenance).  ``extra_metrics`` lets
    callers fold in sweep geomeans (``sweep/heuristic_speedup`` etc.).
    """
    metrics: Dict[str, float] = {}
    per_key: Dict[str, List[float]] = {key: [] for key in RATIO_KEYS}
    for row in payload.get("kernels", []):
        kernel = row.get("kernel", "?")
        for key in RATIO_KEYS:
            value = row.get(key)
            if value is None:
                continue
            metrics[f"{kernel}/{key}"] = float(value)
            per_key[key].append(float(value))
    for key, values in per_key.items():
        if values:
            metrics[f"geomean/{key}"] = geomean(values)
    metrics.update(extra_metrics or {})
    return {
        "schema": PERF_SCHEMA_VERSION,
        "source": source or payload.get("source", "unknown"),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "warps": payload.get("warps"),
        "trips": payload.get("trips"),
        "provenance": payload.get("provenance") or {},
        "metrics": metrics,
    }


def append_record(record: Dict, path: Optional[Path] = None) -> Path:
    """Append one record to the history (creating it if needed)."""
    target = Path(path) if path is not None else default_history_path()
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return target


def read_history(path: Optional[Path] = None) -> List[Dict]:
    """All parseable records, oldest first; [] for a missing file.

    Corrupt or stale-schema lines are skipped, not fatal — an
    append-only log may legitimately contain records from older code.
    """
    target = Path(path) if path is not None else default_history_path()
    records: List[Dict] = []
    try:
        lines = target.read_text().splitlines()
    except OSError:
        return records
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(record, dict) or \
                record.get("schema") != PERF_SCHEMA_VERSION:
            continue
        records.append(record)
    return records


def load_baseline(ref: str, history_path: Optional[Path] = None
                  ) -> Optional[Dict]:
    """Resolve a ``--baseline`` reference to one record.

    ``ref`` may be a negative index into the history (``-2`` = the
    record before the newest, the default), a path to a history JSONL
    (newest record wins), or a path to a raw BENCH json.
    """
    try:
        index = int(ref)
    except ValueError:
        index = None
    if index is not None:
        records = read_history(history_path)
        if -len(records) <= index < len(records):
            return records[index]
        return None
    path = Path(ref)
    try:
        text = path.read_text()
    except OSError:
        return None
    if path.suffix == ".jsonl":
        records = read_history(path)
        return records[-1] if records else None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        return None
    if "kernels" in payload:
        return record_from_bench(payload, source=str(path))
    return payload if payload.get("metrics") else None


# ---------------------------------------------------------------------------
# The gate
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Regression:
    """One tracked metric that dropped beyond the noise threshold."""

    metric: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else 0.0

    def describe(self) -> str:
        return (f"{self.metric}: {self.baseline:.3f} -> {self.current:.3f} "
                f"({100.0 * (self.ratio - 1.0):+.1f}%)")


def check_regression(baseline: Dict, current: Dict,
                     threshold: float = DEFAULT_THRESHOLD,
                     prefix: Optional[str] = None) -> List[Regression]:
    """Tracked metrics that regressed from ``baseline`` to ``current``.

    All tracked metrics are higher-is-better ratios; a metric regresses
    when ``current < baseline * (1 - threshold)``.  Metrics present in
    only one record are ignored (kernels come and go); ``prefix``
    restricts the comparison (e.g. ``geomean/``).
    """
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    regressions: List[Regression] = []
    for name in sorted(base_metrics):
        if prefix and not name.startswith(prefix):
            continue
        cur = cur_metrics.get(name)
        base = base_metrics[name]
        if cur is None or base <= 0:
            continue
        if cur < base * (1.0 - threshold):
            regressions.append(Regression(name, float(base), float(cur)))
    return regressions


def format_report(records: List[Dict], last: int = 8,
                  prefix: Optional[str] = None) -> str:
    """Trend table: one row per metric, one column per record."""
    if not records:
        return "perf history: no records"
    window = records[-last:]
    names = sorted({name for record in window
                    for name in record.get("metrics", {})
                    if not prefix or name.startswith(prefix)})
    if not names:
        return "perf history: no tracked metrics"
    head = [f"perf history: {len(records)} records "
            f"(showing last {len(window)})"]
    stamps = [record.get("recorded_at", "?")[:10] for record in window]
    sources = [str(record.get("source", "?"))[:10] for record in window]
    width = max(len(name) for name in names)
    head.append("  " + " " * width + "  " +
                " ".join(f"{s:>10}" for s in stamps))
    head.append("  " + " " * width + "  " +
                " ".join(f"{s:>10}" for s in sources))
    for name in names:
        cells = []
        for record in window:
            value = record.get("metrics", {}).get(name)
            cells.append(f"{value:>10.3f}" if value is not None
                         else f"{'-':>10}")
        head.append(f"  {name:<{width}}  " + " ".join(cells))
    return "\n".join(head)
