"""Persistent, content-addressed cache of experiment cells.

Every measured cell (see :class:`repro.harness.experiment.Cell`) is a pure
function of (a) the benchmark's unoptimized IR and workload description,
(b) the pipeline configuration and its parameters, and (c) the simulator's
timing model.  This module keys cells by the SHA-256 of exactly those
inputs and stores results as JSON under ``results/.cellcache/<key[:2]>/``
(256 two-hex-char shards; pre-sharding flat entries migrate into their
shard on first access), so
re-running ``python -m repro.harness.table1`` or any ``benchmarks/test_fig*``
file after an unrelated edit is near-instant: only cells whose inputs
actually changed are recomputed.

Invalidation is structural, not temporal:

* the key folds in the *printed baseline IR* plus the benchmark's workload
  fingerprint (seed, launches, output buffers) — editing a kernel or its
  launch geometry changes the key;
* the key folds in :data:`repro.gpu.timing.TIMING_MODEL_VERSION` — bumping
  the tag after a timing-model change orphans every old entry;
* every entry records :data:`SCHEMA_VERSION`; bumping it (when the stored
  shape of a ``Cell`` changes) makes old entries self-invalidate on read.

Corrupted or truncated entries are treated as misses and deleted, never
raised: a cache must only ever cost recomputation.

The cache can be **LRU-bounded**: pass ``max_bytes`` (or set
``REPRO_CACHE_MAX_BYTES``) and :meth:`CellCache.put` evicts
least-recently-used entries whenever the total on-disk size exceeds the
cap.  Recency is the entry's mtime — a :meth:`get` hit and a :meth:`put`
both bump it with a strictly monotonic timestamp, so within one session
eviction order follows the logical access order exactly (deterministic
across ``-j1``/``-jN``, whose store order is pinned by
:mod:`repro.harness.parallel`), while entries from other
sessions/processes still order sensibly by wall clock.  Eviction re-stats
each victim immediately before unlinking and skips any file whose mtime
changed since enumeration: an entry another process just wrote (or
refreshed) is never removed, preserving the atomic-replace contract.

The on-disk discipline (sharding, atomic puts, monotonic recency, safe
eviction, orphan sweeping) lives in :class:`ShardedLRUStore` so the JIT
tier's compiled-region cache (:mod:`repro.gpu.region_cache`) shares it
byte-for-byte rather than reimplementing it.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import itertools
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..gpu.counters import Counters
from ..gpu.timing import TIMING_MODEL_VERSION
from ..obs import metrics as obs_metrics
from ..transforms.heuristic import HeuristicParams, LoopDecision
from .experiment import Cell

#: Bump when the on-disk entry layout changes; mismatched entries are
#: discarded and recomputed.  v2: folder/interpreter semantics unified
#: (saturating fptosi, IEEE fdiv, exact sdiv) and LoopDecision gained the
#: ``applied`` flag.  v3: interpreter phi parallel-copy fix (cells
#: simulated with phi-to-phi edge moves could hold corrupted outputs).
#: v4: Counters gained the per-category ``cat_cycles`` breakdown.
#:
#: Note the execution engine (``REPRO_ENGINE``) is deliberately *not* part
#: of the key: the batched and per-warp engines are bit-identical by
#: contract (tests/test_engine_equivalence.py), so a cell computed under
#: either is valid for both.
SCHEMA_VERSION = 4

#: Environment override for the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment default for the LRU total-bytes cap (absent/empty/invalid
#: or <= 0 means unbounded, the historical behaviour).
MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: Distinguishes concurrent writers of the same key within one process
#: (the service daemon's queue workers share a cache across threads), so
#: two in-flight temp files never interleave their writes.
_TMP_SEQ = itertools.count()

#: Filename prefix of tuner-originated entries (scaled screening rounds and
#: combined-candidate measurements of :mod:`repro.tune`).  They share the
#: cache root with ordinary sweep cells but are distinguishable on disk, so
#: ``repro cache stats`` can report them separately and a user can reason
#: about what re-tuning versus re-sweeping will reuse.
TUNE_PREFIX = "tune-"

_CELL_FIELDS = ("app", "config", "loop_id", "factor", "cycles", "code_size",
                "compile_seconds", "outputs_match_baseline", "timed_out",
                "error")


def default_cache_dir() -> Path:
    """``results/.cellcache`` at the repository root (env-overridable)."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "results" / ".cellcache"


def default_max_bytes() -> Optional[int]:
    """The ``REPRO_CACHE_MAX_BYTES`` cap, or None for unbounded."""
    env = os.environ.get(MAX_BYTES_ENV)
    if not env:
        return None
    try:
        cap = int(env)
    except ValueError:
        return None
    return cap if cap > 0 else None


# -- (de)serialization -------------------------------------------------------

def cell_to_json(cell: Cell) -> Dict:
    data = {name: getattr(cell, name) for name in _CELL_FIELDS}
    data["counters"] = {f.name: getattr(cell.counters, f.name)
                        for f in dataclasses.fields(Counters)}
    data["heuristic_decisions"] = [dataclasses.asdict(d)
                                   for d in cell.heuristic_decisions]
    return data


def cell_from_json(data: Dict) -> Cell:
    counters = Counters(**data["counters"])
    decisions = [LoopDecision(**d) for d in data["heuristic_decisions"]]
    kwargs = {name: data[name] for name in _CELL_FIELDS}
    return Cell(counters=counters, heuristic_decisions=decisions, **kwargs)


def outputs_to_json(outputs: Dict[str, np.ndarray]) -> Dict:
    return {
        name: {
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "data": base64.b64encode(np.ascontiguousarray(arr).tobytes())
            .decode("ascii"),
        }
        for name, arr in outputs.items()
    }


def outputs_from_json(data: Dict) -> Dict[str, np.ndarray]:
    outputs = {}
    for name, spec in data.items():
        arr = np.frombuffer(base64.b64decode(spec["data"]),
                            dtype=np.dtype(spec["dtype"]))
        outputs[name] = arr.reshape(spec["shape"]).copy()
    return outputs


class ShardedLRUStore:
    """On-disk discipline shared by the cell and compiled-region caches.

    Provides 256 two-hex-char shard directories, atomic temp-file+rename
    puts, strictly monotonic mtime recency, re-stat-before-unlink LRU
    eviction, orphan-temp enumeration, and the sweep in :meth:`clear`.
    Subclasses own keying, (de)serialization, and their ``stats()``
    shapes; they store entries at :meth:`shard_path` and write them with
    :meth:`_atomic_write`.
    """

    #: ``cache=`` label for the shared metric families
    #: (``repro_cache_*_total``); "" keeps a store out of the metrics
    #: plane entirely.
    metrics_label = ""

    def __init__(self, root: Path, max_bytes: Optional[int] = None) -> None:
        self.root = Path(root)
        #: LRU total-bytes cap across *all* entries under ``root``.
        #: None = unbounded.
        self.max_bytes = max_bytes
        #: Session counters: get() hits/misses, put() writes, and LRU
        #: evictions since this store was constructed.
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        #: Last recency timestamp handed out; kept strictly increasing so
        #: same-nanosecond accesses still order by logical sequence.
        self._clock_ns = 0

    def _metric(self, kind: str, n: float = 1.0) -> None:
        """Mirror a session counter into the metrics plane (if both on)."""
        if self.metrics_label and obs_metrics.active() is not None:
            obs_metrics.inc(f"repro_cache_{kind}_total", n,
                            cache=self.metrics_label)

    # -- storage -------------------------------------------------------------
    def shard_path(self, key: str, name: str) -> Path:
        """Entry location: ``root/<key[:2]>/<name>``.

        The shard is taken from the *key*, not the filename, so entries
        whose filenames carry a prefix for the same key land in the same
        shard.
        """
        return self.root / key[:2] / name

    def _atomic_write(self, path: Path, text: str) -> None:
        """Write ``text`` to ``path`` atomically (temp file + rename)."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}-{next(_TMP_SEQ)}")
        try:
            tmp.write_text(text)
            os.replace(tmp, path)  # Atomic: readers see old or new.
        except BaseException:
            # Soft failures (disk full, interrupt) must not leave a temp
            # file behind; hard deaths (SIGKILL mid-put) are swept by
            # clear() and reported by stats() instead.
            try:
                tmp.unlink()
            except OSError:
                pass
            raise

    # -- LRU recency and eviction --------------------------------------------
    def _touch(self, path: Path) -> None:
        """Bump ``path``'s mtime with a strictly monotonic timestamp."""
        ns = max(time.time_ns(), self._clock_ns + 1)
        self._clock_ns = ns
        try:
            os.utime(path, ns=(ns, ns))
        except OSError:
            pass  # Vanished under a concurrent clear/eviction: a miss later.

    def _scan_entries(self) -> List[Tuple[int, str, Path, int]]:
        """Every entry as ``(mtime_ns, name, path, size)``, oldest first."""
        scanned = []
        for path in self.entries():
            try:
                st = path.stat()
            except OSError:
                continue  # Vanished between glob and stat.
            scanned.append((st.st_mtime_ns, path.name, path, st.st_size))
        scanned.sort()
        return scanned

    def _evict_one(self, path: Path, expected_mtime_ns: int) -> Optional[int]:
        """Unlink one LRU victim; None if it must be spared.

        The victim is re-stat'ed immediately before the unlink: if its
        mtime moved since enumeration, another process just wrote or
        refreshed it — it is no longer least-recently-used, so eviction
        skips it rather than deleting a fresh entry.
        """
        try:
            st = path.stat()
        except OSError:
            return 0  # Already gone; its bytes are already freed.
        if st.st_mtime_ns != expected_mtime_ns:
            return None
        try:
            path.unlink()
        except OSError:
            return 0
        return st.st_size

    def evict(self, max_bytes: Optional[int] = None) -> List[str]:
        """Evict LRU entries until total size fits the cap.

        Returns the evicted file names.  A no-op when unbounded (both
        ``max_bytes`` and :attr:`max_bytes` are None).
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        if cap is None:
            return []
        scanned = self._scan_entries()
        total = sum(size for _, _, _, size in scanned)
        evicted: List[str] = []
        for mtime_ns, name, path, size in scanned:
            if total <= cap:
                break
            freed = self._evict_one(path, mtime_ns)
            if freed is None:
                continue  # Concurrently refreshed: spare it.
            total -= size
            if freed:
                self.evictions += 1
                self._metric("evictions")
                evicted.append(name)
        return evicted

    # -- maintenance ---------------------------------------------------------
    def entries(self):
        if not self.root.is_dir():
            return []
        # Both levels: sharded entries plus any not-yet-migrated flat ones.
        return sorted(list(self.root.glob("*.json"))
                      + list(self.root.glob("??/*.json")))

    def tmp_files(self):
        """Orphaned ``*.tmp.*`` files left by writers that died mid-put.

        ``put`` writes a temp file and atomically renames it into place;
        a worker killed between the two leaves the temp behind, invisible
        to :meth:`entries`.  These are garbage — sized by ``stats()``,
        swept by :meth:`clear`.
        """
        if not self.root.is_dir():
            return []
        return sorted(list(self.root.glob("*.tmp.*"))
                      + list(self.root.glob("??/*.tmp.*")))

    @staticmethod
    def _sizes(files) -> Tuple[int, int]:
        """(surviving count, total bytes), tolerating vanished files.

        A concurrent ``repro cache clear``, LRU eviction, or parallel
        worker may unlink any path between enumeration and stat; such
        entries simply stop counting instead of raising.
        """
        count = 0
        total = 0
        for f in files:
            try:
                total += f.stat().st_size
            except OSError:
                continue
            count += 1
        return count, total

    def clear(self) -> int:
        """Delete every entry (and orphaned temp file); returns the count."""
        removed = 0
        for path in self.entries() + self.tmp_files():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if self.root.is_dir():
            for sub in self.root.glob("??"):
                try:
                    sub.rmdir()  # Only empty shard dirs; others survive.
                except OSError:
                    pass
        return removed


class CellCache(ShardedLRUStore):
    """Content-addressed persistent store of ``Cell`` results."""

    metrics_label = "cell"

    def __init__(self, root: Optional[Path] = None,
                 prefix: str = "",
                 max_bytes: Optional[int] = None) -> None:
        super().__init__(
            root if root is not None else default_cache_dir(),
            max_bytes if max_bytes is not None else default_max_bytes())
        #: Filename prefix for entries read and written by this instance
        #: ("" for ordinary sweep cells, :data:`TUNE_PREFIX` for
        #: tuner-originated entries).  Prefixes partition the namespace:
        #: a tuner entry is never returned for a sweep lookup.
        self.prefix = prefix

    # -- keys ----------------------------------------------------------------
    @staticmethod
    def make_key(baseline_ir: str, workload: str, config: str,
                 loop_id: Optional[str], factor: int,
                 heuristic: HeuristicParams, max_instructions: int,
                 compile_timeout: Optional[float],
                 verify_each: bool, *,
                 scale: int = 1,
                 tuned: Optional[str] = None) -> str:
        """SHA-256 over every input that determines a cell's result.

        ``scale`` is the tuner's workload-geometry divisor (folded only
        when != 1, so pre-tuner keys are unchanged); ``tuned`` is the
        fingerprint of the resolved tuned decisions for ``config ==
        "tuned"`` cells — editing ``results/tuned/<app>.json`` must
        invalidate every cell compiled from it.
        """
        heur = dataclasses.asdict(heuristic)
        heur["divergent_args"] = list(heur["divergent_args"])
        payload = {
            "schema": SCHEMA_VERSION,
            "timing": TIMING_MODEL_VERSION,
            "ir": baseline_ir,
            "workload": workload,
            "config": config,
            "loop_id": loop_id,
            "factor": factor,
            "heuristic": heur,
            "max_instructions": max_instructions,
            "compile_timeout": compile_timeout,
            "verify_each": verify_each,
        }
        if scale != 1:
            payload["scale"] = scale
        if tuned is not None:
            payload["tuned"] = tuned
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        # Entries are sharded into 256 two-hex-prefix subdirectories so the
        # cache root stays listable as it grows (a full 16-benchmark sweep
        # plus tuner rounds writes thousands of cells).
        return self.shard_path(key, f"{self.prefix}{key}.json")

    def _flat_path(self, key: str) -> Path:
        """Pre-sharding location of an entry (cache root, no shard dir)."""
        return self.root / f"{self.prefix}{key}.json"

    def _migrate_flat(self, key: str, path: Path) -> Optional[str]:
        """Move a legacy flat entry into its shard; return its text or None.

        Caches written before sharding kept every entry directly under
        ``root``.  On the first lookup of such a key the entry is renamed
        into ``root/<key[:2]>/`` so old caches converge to the sharded
        layout incrementally, without a migration pass.
        """
        flat = self._flat_path(key)
        try:
            raw = flat.read_text()
        except OSError:
            return None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            os.replace(flat, path)
        except OSError:
            pass  # Migration is best-effort; the read already succeeded.
        return raw

    # -- storage -------------------------------------------------------------
    def get(self, key: str
            ) -> Optional[Tuple[Cell, Optional[Dict[str, np.ndarray]]]]:
        """Load ``(cell, baseline_outputs_or_None)``; None on any miss.

        Stale-schema, corrupted, or truncated entries are deleted and
        reported as misses so they are transparently recomputed.
        """
        path = self._path(key)
        try:
            raw = path.read_text()
        except OSError:
            raw = self._migrate_flat(key, path)
            if raw is None:
                self.misses += 1
                self._metric("misses")
                return None
        try:
            data = json.loads(raw)
            if data.get("schema") != SCHEMA_VERSION:
                raise ValueError("stale cache schema")
            cell = cell_from_json(data["cell"])
            outputs = data.get("outputs")
            decoded = outputs_from_json(outputs) if outputs else None
        except Exception:
            # Corrupted/truncated/stale entry: drop it, recompute.  The
            # flat path is unlinked too in case migration's rename failed.
            for stale in (path, self._flat_path(key)):
                try:
                    stale.unlink()
                except OSError:
                    pass
            self.misses += 1
            self._metric("misses")
            return None
        self.hits += 1
        self._metric("hits")
        self._touch(path)  # LRU recency: a hit makes the entry newest.
        return cell, decoded

    def put(self, key: str, cell: Cell,
            outputs: Optional[Dict[str, np.ndarray]] = None) -> None:
        """Store a cell (plus baseline outputs for anchor cells)."""
        data = {"schema": SCHEMA_VERSION, "cell": cell_to_json(cell)}
        if outputs is not None:
            data["outputs"] = outputs_to_json(outputs)
        path = self._path(key)
        text = json.dumps(data)
        self._atomic_write(path, text)
        self.puts += 1
        self._metric("puts")
        self._metric("bytes_written", len(text))
        self._touch(path)
        if self.max_bytes is not None:
            self.evict()

    # -- reporting -----------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        files = self.entries()
        n_files, files_bytes = self._sizes(files)
        n_tune, tune_bytes = self._sizes(
            [f for f in files if f.name.startswith(TUNE_PREFIX)])
        n_tmp, tmp_bytes = self._sizes(self.tmp_files())
        return {
            "root": str(self.root),
            "entries": n_files,
            "bytes": files_bytes,
            "tune_entries": n_tune,
            "tune_bytes": tune_bytes,
            "tmp_files": n_tmp,
            "tmp_bytes": tmp_bytes,
            "max_bytes": self.max_bytes,
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_puts": self.puts,
            "session_evictions": self.evictions,
        }

    def session_line(self) -> str:
        """One-line session hit/miss/put summary for per-sweep reporting."""
        looked = self.hits + self.misses
        rate = 100.0 * self.hits / looked if looked else 0.0
        line = (f"cache: {self.hits} hits / {self.misses} misses "
                f"({rate:.0f}% hit rate), {self.puts} entries written")
        if self.evictions:
            line += f", {self.evictions} evicted (LRU)"
        return line
