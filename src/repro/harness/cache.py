"""Persistent, content-addressed cache of experiment cells.

Every measured cell (see :class:`repro.harness.experiment.Cell`) is a pure
function of (a) the benchmark's unoptimized IR and workload description,
(b) the pipeline configuration and its parameters, and (c) the simulator's
timing model.  This module keys cells by the SHA-256 of exactly those
inputs and stores results as JSON under ``results/.cellcache/<key[:2]>/``
(256 two-hex-char shards; pre-sharding flat entries migrate into their
shard on first access), so
re-running ``python -m repro.harness.table1`` or any ``benchmarks/test_fig*``
file after an unrelated edit is near-instant: only cells whose inputs
actually changed are recomputed.

Invalidation is structural, not temporal:

* the key folds in the *printed baseline IR* plus the benchmark's workload
  fingerprint (seed, launches, output buffers) — editing a kernel or its
  launch geometry changes the key;
* the key folds in :data:`repro.gpu.timing.TIMING_MODEL_VERSION` — bumping
  the tag after a timing-model change orphans every old entry;
* every entry records :data:`SCHEMA_VERSION`; bumping it (when the stored
  shape of a ``Cell`` changes) makes old entries self-invalidate on read.

Corrupted or truncated entries are treated as misses and deleted, never
raised: a cache must only ever cost recomputation.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from ..gpu.counters import Counters
from ..gpu.timing import TIMING_MODEL_VERSION
from ..transforms.heuristic import HeuristicParams, LoopDecision
from .experiment import Cell

#: Bump when the on-disk entry layout changes; mismatched entries are
#: discarded and recomputed.  v2: folder/interpreter semantics unified
#: (saturating fptosi, IEEE fdiv, exact sdiv) and LoopDecision gained the
#: ``applied`` flag.  v3: interpreter phi parallel-copy fix (cells
#: simulated with phi-to-phi edge moves could hold corrupted outputs).
#: v4: Counters gained the per-category ``cat_cycles`` breakdown.
#:
#: Note the execution engine (``REPRO_ENGINE``) is deliberately *not* part
#: of the key: the batched and per-warp engines are bit-identical by
#: contract (tests/test_engine_equivalence.py), so a cell computed under
#: either is valid for both.
SCHEMA_VERSION = 4

#: Environment override for the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Filename prefix of tuner-originated entries (scaled screening rounds and
#: combined-candidate measurements of :mod:`repro.tune`).  They share the
#: cache root with ordinary sweep cells but are distinguishable on disk, so
#: ``repro cache stats`` can report them separately and a user can reason
#: about what re-tuning versus re-sweeping will reuse.
TUNE_PREFIX = "tune-"

_CELL_FIELDS = ("app", "config", "loop_id", "factor", "cycles", "code_size",
                "compile_seconds", "outputs_match_baseline", "timed_out",
                "error")


def default_cache_dir() -> Path:
    """``results/.cellcache`` at the repository root (env-overridable)."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "results" / ".cellcache"


# -- (de)serialization -------------------------------------------------------

def cell_to_json(cell: Cell) -> Dict:
    data = {name: getattr(cell, name) for name in _CELL_FIELDS}
    data["counters"] = {f.name: getattr(cell.counters, f.name)
                        for f in dataclasses.fields(Counters)}
    data["heuristic_decisions"] = [dataclasses.asdict(d)
                                   for d in cell.heuristic_decisions]
    return data


def cell_from_json(data: Dict) -> Cell:
    counters = Counters(**data["counters"])
    decisions = [LoopDecision(**d) for d in data["heuristic_decisions"]]
    kwargs = {name: data[name] for name in _CELL_FIELDS}
    return Cell(counters=counters, heuristic_decisions=decisions, **kwargs)


def outputs_to_json(outputs: Dict[str, np.ndarray]) -> Dict:
    return {
        name: {
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "data": base64.b64encode(np.ascontiguousarray(arr).tobytes())
            .decode("ascii"),
        }
        for name, arr in outputs.items()
    }


def outputs_from_json(data: Dict) -> Dict[str, np.ndarray]:
    outputs = {}
    for name, spec in data.items():
        arr = np.frombuffer(base64.b64decode(spec["data"]),
                            dtype=np.dtype(spec["dtype"]))
        outputs[name] = arr.reshape(spec["shape"]).copy()
    return outputs


class CellCache:
    """Content-addressed persistent store of ``Cell`` results."""

    def __init__(self, root: Optional[Path] = None,
                 prefix: str = "") -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        #: Filename prefix for entries read and written by this instance
        #: ("" for ordinary sweep cells, :data:`TUNE_PREFIX` for
        #: tuner-originated entries).  Prefixes partition the namespace:
        #: a tuner entry is never returned for a sweep lookup.
        self.prefix = prefix
        #: Session counters: get() hits/misses and put() writes since this
        #: CellCache was constructed.  ``repro`` prints them after each
        #: sweep so a run's actual hit rate is visible, not just the
        #: on-disk entry count.
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # -- keys ----------------------------------------------------------------
    @staticmethod
    def make_key(baseline_ir: str, workload: str, config: str,
                 loop_id: Optional[str], factor: int,
                 heuristic: HeuristicParams, max_instructions: int,
                 compile_timeout: Optional[float],
                 verify_each: bool, *,
                 scale: int = 1,
                 tuned: Optional[str] = None) -> str:
        """SHA-256 over every input that determines a cell's result.

        ``scale`` is the tuner's workload-geometry divisor (folded only
        when != 1, so pre-tuner keys are unchanged); ``tuned`` is the
        fingerprint of the resolved tuned decisions for ``config ==
        "tuned"`` cells — editing ``results/tuned/<app>.json`` must
        invalidate every cell compiled from it.
        """
        heur = dataclasses.asdict(heuristic)
        heur["divergent_args"] = list(heur["divergent_args"])
        payload = {
            "schema": SCHEMA_VERSION,
            "timing": TIMING_MODEL_VERSION,
            "ir": baseline_ir,
            "workload": workload,
            "config": config,
            "loop_id": loop_id,
            "factor": factor,
            "heuristic": heur,
            "max_instructions": max_instructions,
            "compile_timeout": compile_timeout,
            "verify_each": verify_each,
        }
        if scale != 1:
            payload["scale"] = scale
        if tuned is not None:
            payload["tuned"] = tuned
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        # Entries are sharded into 256 two-hex-prefix subdirectories so the
        # cache root stays listable as it grows (a full 16-benchmark sweep
        # plus tuner rounds writes thousands of cells).  The shard is taken
        # from the *key*, not the filename, so plain and tune- entries for
        # the same key land in the same shard.
        return self.root / key[:2] / f"{self.prefix}{key}.json"

    def _flat_path(self, key: str) -> Path:
        """Pre-sharding location of an entry (cache root, no shard dir)."""
        return self.root / f"{self.prefix}{key}.json"

    def _migrate_flat(self, key: str, path: Path) -> Optional[str]:
        """Move a legacy flat entry into its shard; return its text or None.

        Caches written before sharding kept every entry directly under
        ``root``.  On the first lookup of such a key the entry is renamed
        into ``root/<key[:2]>/`` so old caches converge to the sharded
        layout incrementally, without a migration pass.
        """
        flat = self._flat_path(key)
        try:
            raw = flat.read_text()
        except OSError:
            return None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            os.replace(flat, path)
        except OSError:
            pass  # Migration is best-effort; the read already succeeded.
        return raw

    # -- storage -------------------------------------------------------------
    def get(self, key: str
            ) -> Optional[Tuple[Cell, Optional[Dict[str, np.ndarray]]]]:
        """Load ``(cell, baseline_outputs_or_None)``; None on any miss.

        Stale-schema, corrupted, or truncated entries are deleted and
        reported as misses so they are transparently recomputed.
        """
        path = self._path(key)
        try:
            raw = path.read_text()
        except OSError:
            raw = self._migrate_flat(key, path)
            if raw is None:
                self.misses += 1
                return None
        try:
            data = json.loads(raw)
            if data.get("schema") != SCHEMA_VERSION:
                raise ValueError("stale cache schema")
            cell = cell_from_json(data["cell"])
            outputs = data.get("outputs")
            decoded = outputs_from_json(outputs) if outputs else None
        except Exception:
            # Corrupted/truncated/stale entry: drop it, recompute.  The
            # flat path is unlinked too in case migration's rename failed.
            for stale in (path, self._flat_path(key)):
                try:
                    stale.unlink()
                except OSError:
                    pass
            self.misses += 1
            return None
        self.hits += 1
        return cell, decoded

    def put(self, key: str, cell: Cell,
            outputs: Optional[Dict[str, np.ndarray]] = None) -> None:
        """Store a cell (plus baseline outputs for anchor cells)."""
        data = {"schema": SCHEMA_VERSION, "cell": cell_to_json(cell)}
        if outputs is not None:
            data["outputs"] = outputs_to_json(outputs)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(data))
        os.replace(tmp, path)  # Atomic: concurrent readers see old or new.
        self.puts += 1

    # -- maintenance ---------------------------------------------------------
    def entries(self):
        if not self.root.is_dir():
            return []
        # Both levels: sharded entries plus any not-yet-migrated flat ones.
        return sorted(list(self.root.glob("*.json"))
                      + list(self.root.glob("??/*.json")))

    def stats(self) -> Dict[str, object]:
        files = self.entries()
        tune = [f for f in files if f.name.startswith(TUNE_PREFIX)]
        return {
            "root": str(self.root),
            "entries": len(files),
            "bytes": sum(f.stat().st_size for f in files),
            "tune_entries": len(tune),
            "tune_bytes": sum(f.stat().st_size for f in tune),
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_puts": self.puts,
        }

    def session_line(self) -> str:
        """One-line session hit/miss/put summary for per-sweep reporting."""
        looked = self.hits + self.misses
        rate = 100.0 * self.hits / looked if looked else 0.0
        return (f"cache: {self.hits} hits / {self.misses} misses "
                f"({rate:.0f}% hit rate), {self.puts} entries written")

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if self.root.is_dir():
            for sub in self.root.glob("??"):
                try:
                    sub.rmdir()  # Only empty shard dirs; others survive.
                except OSError:
                    pass
        return removed
