"""Parallel, persistently-cached sweep engine.

The paper's evaluation is a large Cartesian sweep — every discoverable loop
x u in {2,4,8} x five pipeline configurations x 16 applications.  The
serial :class:`~repro.harness.experiment.ExperimentRunner` walks that space
one cell at a time; this module fans the same cells out over a process
pool and backs them with the content-addressed persistent cache of
:mod:`repro.harness.cache`:

* all ``(app, config, loop_id, factor)`` cells are enumerated up front and
  deduplicated, so shared cells (every exhibit needs the baselines) are
  computed once;
* cells are dispatched one-per-task, *costliest first* (u=8 before u=4
  before u=2, heuristic cells treated as u_max): long compilations start
  immediately instead of straggling at the tail of the sweep;
* a crashing cell is isolated — the worker returns the traceback and the
  sweep records a failed :class:`Cell` (``error`` set, ``cycles == inf``)
  instead of dying;
* results are returned in deterministic enumeration order regardless of
  completion order, and are bit-identical (cycles, code size, counters) to
  the serial runner's, because workers run the very same
  ``ExperimentRunner._run``.

Worker count defaults to ``os.cpu_count()``, overridable with the
``REPRO_JOBS`` environment variable or ``--jobs/-j`` on the CLI.
"""

from __future__ import annotations

import json
import os
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..bench import benchmark_by_name
from ..bench.base import Benchmark
from ..ir.printer import print_module
from ..obs import metrics as obs_metrics
from ..obs import session as obs
from ..transforms.heuristic import HeuristicParams
from .cache import CellCache
from .experiment import UNROLL_FACTORS, Cell, ExperimentRunner

#: Environment override for the default worker count.
JOBS_ENV = "REPRO_JOBS"

ALL_CONFIGS = ("baseline", "uu", "unroll", "unmerge", "uu_heuristic")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """CLI value > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get(JOBS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


@dataclass(frozen=True)
class CellSpec:
    """One enumerated sweep cell."""

    app: str
    config: str
    loop_id: Optional[str]
    factor: int

    @property
    def key(self) -> Tuple[str, str, Optional[str], int]:
        return (self.app, self.config, self.loop_id, self.factor)


def sweep_specs(bench: Benchmark,
                configs: Optional[Sequence[str]] = None,
                factors: Sequence[int] = UNROLL_FACTORS) -> List[CellSpec]:
    """Enumerate one application's cells for the requested configs.

    With the default arguments this is exactly the cell set of
    ``ExperimentRunner.full_sweep`` (everything Figures 6-8 and Table I
    need).  The baseline is always included: every other cell's
    differential check and every ratio needs it.
    """
    configs = tuple(configs) if configs is not None else ALL_CONFIGS
    specs = [CellSpec(bench.name, "baseline", None, 1)]
    loop_ids = None
    for config in configs:
        if config in ("uu", "unroll", "unmerge"):
            if loop_ids is None:
                loop_ids = bench.loop_ids()
            for loop_id in loop_ids:
                if config == "unmerge":
                    specs.append(CellSpec(bench.name, "unmerge", loop_id, 1))
                else:
                    for factor in factors:
                        specs.append(
                            CellSpec(bench.name, config, loop_id, factor))
        elif config == "uu_heuristic":
            specs.append(CellSpec(bench.name, "uu_heuristic", None, 1))
        elif config in ("tuned", "predicted"):
            specs.append(CellSpec(bench.name, config, None, 1))
    return specs


def workload_fingerprint(bench: Benchmark) -> str:
    """Stable description of the benchmark's measured workload.

    The printed IR covers the kernels; this covers the launch geometry,
    workload seed, and observable buffers, so editing e.g. a grid size
    invalidates cached cells even though the kernels are unchanged.  (The
    contents of ``setup()`` buffers are derived from the seed; a change to
    the setup code itself warrants a ``SCHEMA_VERSION`` bump.)
    """
    return json.dumps({
        "name": bench.name,
        "seed": bench.seed,
        "launches": [[l.kernel, l.grid_dim, l.block_dim,
                      [list(a) if isinstance(a, tuple) else a
                       for a in l.args]]
                     for l in bench.launches()],
        "outputs": bench.output_buffers(),
    }, sort_keys=True)


def _spec_cost(spec: CellSpec, u_max: int) -> int:
    """Relative cost estimate used to schedule long cells first."""
    if spec.config in ("uu_heuristic", "tuned", "predicted"):
        return u_max + 1
    if spec.config == "baseline":
        return 1
    return spec.factor


# -- worker side -------------------------------------------------------------
# Workers rebuild the benchmark from the registry by name and run the very
# same serial ``ExperimentRunner._run``; everything crossing the process
# boundary (names, params, Cell, numpy outputs) pickles cleanly.

def _make_runner(params: Tuple) -> ExperimentRunner:
    (heuristic, max_instructions, compile_timeout, verify_each, engine,
     workload_scale, tuned_dir, sim_index_dir) = params
    return ExperimentRunner(
        heuristic=heuristic,
        max_instructions=max_instructions,
        compile_timeout=compile_timeout,
        verify_each=verify_each,
        engine=engine,
        workload_scale=workload_scale,
        tuned_dir=Path(tuned_dir) if tuned_dir else None,
        sim_index_dir=Path(sim_index_dir) if sim_index_dir else None)


def _worker_extras(runner: ExperimentRunner) -> Dict:
    """Telemetry a worker ships home alongside its cell.

    ``pass_stats``/``phase_seconds`` let a parallel ``summary --profile``
    report the same merged per-pass breakdown the serial runner shows;
    ``obs`` carries the worker's remark/trace/profile payload (None when
    ``REPRO_TRACE`` is off); ``region_cache`` ships the worker's jit
    region-cache session counters (snapshot-and-reset, so a pooled worker
    running many tasks never double-reports); ``metrics`` ships the
    worker's metric-registry snapshot (None when ``REPRO_METRICS`` is
    off) under the same discipline.
    """
    from ..gpu.region_cache import take_session
    return {"pass_stats": runner.pass_stats,
            "phase_seconds": dict(runner.phase_seconds),
            "obs": obs.end_worker(),
            "region_cache": take_session(),
            "metrics": obs_metrics.end_worker()}


def _worker_baseline(app: str, params: Tuple):
    """Compute one application's baseline cell plus reference outputs."""
    # Reset the obs slot first: fork()ed workers inherit the parent's
    # session object, and exporting it would re-ship every remark the
    # parent had already collected.
    obs.begin_worker()
    obs_metrics.begin_worker()
    try:
        bench = benchmark_by_name(app)
        runner = _make_runner(params)
        cell = runner.cell(bench, "baseline")
        return ("ok", cell, runner._baseline_outputs.get(app),
                _worker_extras(runner))
    except Exception:
        return ("err", traceback.format_exc(), None, None)


def _worker_cell(app: str, config: str, loop_id: Optional[str], factor: int,
                 params: Tuple, reference: Optional[Dict[str, np.ndarray]]):
    """Compute one non-baseline cell against shipped reference outputs."""
    obs.begin_worker()
    obs_metrics.begin_worker()
    try:
        bench = benchmark_by_name(app)
        runner = _make_runner(params)
        if reference is not None:
            runner._baseline_outputs[app] = reference
        cell = runner._run(bench, config, loop_id, factor)
        return ("ok", cell, None, _worker_extras(runner))
    except Exception:
        return ("err", traceback.format_exc(), None, None)


def _failed_cell(spec: CellSpec, message: str) -> Cell:
    from ..gpu.counters import Counters
    return Cell(app=spec.app, config=spec.config, loop_id=spec.loop_id,
                factor=spec.factor, cycles=float("inf"), code_size=0,
                compile_seconds=0.0, counters=Counters(),
                outputs_match_baseline=False, error=message)


class ParallelRunner(ExperimentRunner):
    """Drop-in :class:`ExperimentRunner` with fan-out and persistence.

    Single-cell calls (``cell``/``baseline``/...) behave exactly like the
    serial runner, except that results are transparently read from and
    written to the persistent cell cache.  Sweep-shaped calls
    (:meth:`prefetch`, :meth:`full_sweep`) enumerate their cells up front
    and compute the misses on a process pool.
    """

    def __init__(self, heuristic: Optional[HeuristicParams] = None,
                 max_instructions: int = 20_000,
                 compile_timeout: Optional[float] = 20.0,
                 verify_each: bool = False,
                 jobs: Optional[int] = None,
                 cache: Optional[CellCache] = None,
                 use_cache: bool = True,
                 engine: Optional[str] = None,
                 workload_scale: int = 1,
                 tuned_dir: Optional[Path] = None,
                 sim_index_dir: Optional[Path] = None) -> None:
        super().__init__(heuristic=heuristic,
                         max_instructions=max_instructions,
                         compile_timeout=compile_timeout,
                         verify_each=verify_each,
                         engine=engine,
                         workload_scale=workload_scale,
                         tuned_dir=tuned_dir,
                         sim_index_dir=sim_index_dir)
        self.jobs = resolve_jobs(jobs)
        self.cache: Optional[CellCache] = (
            cache if cache is not None else (CellCache() if use_cache
                                             else None))
        self._fingerprints: Dict[str, Tuple[str, str]] = {}

    # -- cache plumbing ------------------------------------------------------
    def _fingerprint(self, bench: Benchmark) -> Tuple[str, str]:
        """(printed baseline IR, workload fingerprint), computed once."""
        cached = self._fingerprints.get(bench.name)
        if cached is None:
            cached = (print_module(bench.build_module()),
                      workload_fingerprint(bench))
            self._fingerprints[bench.name] = cached
        return cached

    def _cache_key(self, bench: Benchmark, config: str,
                   loop_id: Optional[str], factor: int) -> str:
        ir, workload = self._fingerprint(bench)
        tuned = None
        if config == "tuned":
            # Folding the resolved decisions in means editing/deleting/
            # staling results/tuned/<app>.json orphans the old cells.
            from ..tune.store import decisions_fingerprint
            tuned = decisions_fingerprint(bench.name, self.tuned_dir)
        elif config == "predicted":
            # Same discipline for predictions: any index growth, schema
            # bump, or k/threshold change that alters the resolved
            # decision set re-keys the cell.  The config string differs
            # from "tuned", so the shared ``tuned=`` slot cannot collide.
            from ..similarity.predict import prediction_fingerprint
            tuned = prediction_fingerprint(self._predict(bench))
        return CellCache.make_key(
            ir, workload, config, loop_id, factor, self.heuristic,
            self.max_instructions, self.compile_timeout, self.verify_each,
            scale=self.workload_scale, tuned=tuned)

    def _load_cached(self, bench: Benchmark, spec_key: Tuple,
                     cache_key: str) -> Optional[Cell]:
        entry = self.cache.get(cache_key) if self.cache else None
        if entry is None:
            return None
        cell, outputs = entry
        if outputs is not None and bench.name not in self._baseline_outputs:
            self._baseline_outputs[bench.name] = outputs
        self._cache[spec_key] = cell
        return cell

    def _store(self, bench: Benchmark, cell: Cell, cache_key: str) -> None:
        if self.cache is None or cell.error is not None:
            return
        outputs = (self._baseline_outputs.get(bench.name)
                   if cell.config == "baseline" else None)
        self.cache.put(cache_key, cell, outputs)

    # -- serial-compatible single-cell API -----------------------------------
    def cell(self, bench: Benchmark, config: str,
             loop_id: Optional[str] = None, factor: int = 1) -> Cell:
        spec_key = (bench.name, config, loop_id, factor)
        cached = self._cache.get(spec_key)
        if cached is not None:
            return cached
        if self.cache is not None:
            cache_key = self._cache_key(bench, config, loop_id, factor)
            hit = self._load_cached(bench, spec_key, cache_key)
            if hit is not None:
                return hit
        result = self._run(bench, config, loop_id, factor)
        self._cache[spec_key] = result
        if self.cache is not None:
            self._store(bench, result, cache_key)
        return result

    # -- sweeps --------------------------------------------------------------
    def prefetch(self, benches: Sequence[Benchmark],
                 configs: Optional[Sequence[str]] = None,
                 factors: Sequence[int] = UNROLL_FACTORS,
                 specs: Optional[Sequence[CellSpec]] = None) -> List[Cell]:
        """Materialise a cell set (cache -> pool), deterministically ordered.

        Returns cells in enumeration order; afterwards every enumerated
        cell is resident in the in-memory cache, so the serial accessors
        (and every figure/table generator) hit without recomputation.
        """
        benches = list(benches)
        by_name = {b.name: b for b in benches}
        if specs is None:
            specs = [s for b in benches
                     for s in sweep_specs(b, configs, factors)]
        # Deduplicate while preserving enumeration order.
        specs = list(dict.fromkeys(specs))

        missing: List[Tuple[CellSpec, Optional[str]]] = []
        for spec in specs:
            if spec.key in self._cache:
                continue
            bench = by_name.get(spec.app)
            cache_key = None
            if bench is not None and self.cache is not None:
                cache_key = self._cache_key(bench, spec.config, spec.loop_id,
                                            spec.factor)
                if self._load_cached(bench, spec.key, cache_key) is not None:
                    continue
            missing.append((spec, cache_key))

        if missing:
            # One count, no serial/pool label: the -j1 and -jN registries
            # must fold byte-identically for the same cell set.
            obs_metrics.inc("repro_sweep_cells_total", len(missing))
            if self.jobs <= 1:
                self._compute_serial(missing, by_name)
            else:
                self._compute_parallel(missing, by_name)
        return [self._cache[spec.key] for spec in specs]

    def full_sweep(self, bench: Benchmark) -> Dict[str, List[Cell]]:
        """Everything Figures 6-8 need, computed via the parallel engine."""
        self.prefetch([bench])
        return super().full_sweep(bench)

    # -- execution strategies ------------------------------------------------
    def _compute_serial(self, missing, by_name) -> None:
        for spec, cache_key in missing:
            bench = by_name.get(spec.app)
            try:
                if bench is None:
                    bench = benchmark_by_name(spec.app)
                cell = self._run(bench, spec.config, spec.loop_id,
                                 spec.factor)
            except Exception:
                obs_metrics.inc("repro_sweep_worker_failures_total")
                cell = _failed_cell(spec, traceback.format_exc())
            self._cache[spec.key] = cell
            if bench is not None and cache_key is not None:
                self._store(bench, cell, cache_key)

    def _compute_parallel(self, missing, by_name) -> None:
        params = (self.heuristic, self.max_instructions,
                  self.compile_timeout, self.verify_each, self.engine,
                  self.workload_scale,
                  str(self.tuned_dir) if self.tuned_dir else None,
                  str(self.sim_index_dir) if self.sim_index_dir else None)
        baseline_specs = [(s, k) for s, k in missing
                          if s.config == "baseline"]
        other_specs = [(s, k) for s, k in missing if s.config != "baseline"]
        # Apps whose reference outputs stage-2 workers will need.
        needed_apps = list(dict.fromkeys(
            [s.app for s, _ in baseline_specs] +
            [s.app for s, _ in other_specs
             if s.app not in self._baseline_outputs]))
        failed_baselines: Dict[str, str] = {}

        # Telemetry and persistent-cache writes are buffered per spec and
        # folded in *enumeration* order after the pool drains: futures
        # complete in nondeterministic order, and neither the merged
        # remark stream / pass statistics (tests/test_obs.py pins jobs=1
        # vs jobs=N streams equal) nor the cache's LRU recency order
        # (which decides what an LRU-bounded cache evicts) may depend on
        # pool scheduling.
        extras_by_spec: Dict[CellSpec, Dict] = {}
        computed: Dict[CellSpec, Cell] = {}

        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            # Stage 1: baselines (reference outputs feed every other cell).
            futures = {}
            for app in needed_apps:
                futures[pool.submit(_worker_baseline, app, params)] = app
            for future in list(futures):
                app = futures[future]
                status, payload, outputs, extras = future.result()
                if status == "err":
                    obs_metrics.inc("repro_sweep_worker_failures_total")
                    failed_baselines[app] = payload
                    continue
                if outputs is not None:
                    self._baseline_outputs[app] = outputs
                spec = CellSpec(app, "baseline", None, 1)
                self._cache[spec.key] = payload
                computed[spec] = payload
                extras_by_spec[spec] = extras

            for spec, cache_key in baseline_specs:
                if spec.app in failed_baselines:
                    self._cache[spec.key] = _failed_cell(
                        spec, failed_baselines[spec.app])

            # Stage 2: everything else, costliest first so u=8 and
            # heuristic compilations never straggle at the tail.
            u_max = self.heuristic.u_max
            ordered = sorted(other_specs,
                             key=lambda item: _spec_cost(item[0], u_max),
                             reverse=True)
            futures = {}
            for spec, cache_key in ordered:
                if spec.app in failed_baselines:
                    self._cache[spec.key] = _failed_cell(
                        spec, "baseline failed:\n" +
                        failed_baselines[spec.app])
                    continue
                reference = self._baseline_outputs.get(spec.app)
                futures[pool.submit(
                    _worker_cell, spec.app, spec.config, spec.loop_id,
                    spec.factor, params, reference)] = spec
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    spec = futures[future]
                    status, payload, _, extras = future.result()
                    if status == "err":
                        obs_metrics.inc("repro_sweep_worker_failures_total")
                        self._cache[spec.key] = _failed_cell(spec, payload)
                    else:
                        self._cache[spec.key] = payload
                        computed[spec] = payload
                        extras_by_spec[spec] = extras

        # Deterministic fold: the enumerated order of ``missing`` (what the
        # serial path would have computed in), then any stage-1 baselines
        # that were computed only for their reference outputs.  Persisting
        # here rather than at completion time makes the cache's put order
        # — and with it LRU eviction under a bytes cap — independent of
        # worker scheduling.
        for spec, cache_key in missing:
            cell = computed.get(spec)
            if cell is not None:
                self._persist(spec, cell, cache_key, by_name)
            extras = extras_by_spec.pop(spec, None)
            if extras:
                self._absorb_extras(extras)
        in_missing = {spec for spec, _ in missing}
        for app in needed_apps:
            spec = CellSpec(app, "baseline", None, 1)
            cell = computed.get(spec)
            if cell is not None and spec not in in_missing:
                self._persist(spec, cell, None, by_name)
            extras = extras_by_spec.pop(spec, None)
            if extras:
                self._absorb_extras(extras)

    def _persist(self, spec: CellSpec, cell: Cell,
                 cache_key: Optional[str], by_name) -> None:
        """Write one computed cell through to the persistent cache."""
        if self.cache is None:
            return
        bench = by_name.get(spec.app)
        if bench is None:
            try:
                bench = benchmark_by_name(spec.app)
            except KeyError:
                return
        if cache_key is None:
            cache_key = self._cache_key(bench, spec.config, spec.loop_id,
                                        spec.factor)
        self._store(bench, cell, cache_key)

    def _absorb_extras(self, extras: Dict) -> None:
        """Fold one worker's telemetry into this runner (and its session)."""
        stats = extras.get("pass_stats")
        if stats is not None:
            self.pass_stats.merge(stats)
        for phase, seconds in (extras.get("phase_seconds") or {}).items():
            self.phase_seconds[phase] = (
                self.phase_seconds.get(phase, 0.0) + seconds)
        payload = extras.get("obs")
        if payload:
            session = obs.active()
            if session is not None:
                session.merge_payload(payload)
        region = extras.get("region_cache")
        if region:
            from ..gpu.region_cache import session as region_session
            region_session().absorb(region)
        obs_metrics.absorb(extras.get("metrics"))

def prefetch_if_parallel(runner, benches,
                         configs: Optional[Sequence[str]] = None,
                         factors: Sequence[int] = UNROLL_FACTORS) -> None:
    """Warm a runner's cell set if it supports batch prefetching.

    The figure/table generators call this so a :class:`ParallelRunner`
    computes their whole cell set in one fan-out while a plain
    :class:`ExperimentRunner` keeps its serial behaviour untouched.
    """
    prefetch = getattr(runner, "prefetch", None)
    if prefetch is not None:
        prefetch(benches, configs=configs, factors=factors)
