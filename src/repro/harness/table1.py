"""Table I: benchmark overview with baseline and heuristic timings.

Prints the same columns as the paper (name, category, command line, #loops,
%C, baseline mean +- RSD, heuristic mean +- RSD).  Milliseconds are
obtained by anchoring each benchmark's *baseline* simulated cycle count to
the paper's baseline mean (one scale factor per benchmark — see DESIGN.md),
so the heuristic column's deviation from the paper is a pure product of our
simulated relative speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..bench import all_benchmarks
from ..bench.base import Benchmark
from .experiment import ExperimentRunner
from .parallel import prefetch_if_parallel
from .stats import mean_and_rsd, simulate_runs


@dataclass
class Table1Row:
    name: str
    category: str
    command_line: str
    loops: int
    compute_percent: float
    baseline_mean_ms: float
    baseline_rsd: float
    heuristic_mean_ms: float
    heuristic_rsd: float
    speedup: float
    paper_baseline_ms: float
    paper_heuristic_ms: float

    @property
    def paper_speedup(self) -> float:
        if self.paper_heuristic_ms <= 0:
            return 0.0
        return self.paper_baseline_ms / self.paper_heuristic_ms


def build_row(bench: Benchmark, runner: ExperimentRunner,
              runs: int = 20) -> Table1Row:
    base = runner.baseline(bench)
    heur = runner.heuristic_cell(bench)

    # Anchor: paper baseline ms per simulated cycle.
    scale = bench.paper.baseline_ms / base.cycles if base.cycles else 0.0
    base_ms = base.cycles * scale
    heur_ms = heur.cycles * scale

    base_samples = simulate_runs(base_ms, bench.paper.baseline_rsd, runs,
                                 seed=hash(bench.name) & 0xFFFF)
    heur_samples = simulate_runs(heur_ms, bench.paper.heuristic_rsd, runs,
                                 seed=(hash(bench.name) >> 4) & 0xFFFF)
    base_mean, base_rsd = mean_and_rsd(base_samples)
    heur_mean, heur_rsd = mean_and_rsd(heur_samples)

    return Table1Row(
        name=bench.name,
        category=bench.category,
        command_line=bench.command_line,
        loops=len(bench.loop_ids()),
        compute_percent=bench.paper.compute_percent,
        baseline_mean_ms=base_mean,
        baseline_rsd=base_rsd,
        heuristic_mean_ms=heur_mean,
        heuristic_rsd=heur_rsd,
        speedup=base.cycles / heur.cycles if heur.cycles else 0.0,
        paper_baseline_ms=bench.paper.baseline_ms,
        paper_heuristic_ms=bench.paper.heuristic_ms,
    )


def build_table(runner: Optional[ExperimentRunner] = None,
                benches: Optional[List[Benchmark]] = None) -> List[Table1Row]:
    runner = runner or ExperimentRunner()
    benches = benches if benches is not None else all_benchmarks()
    prefetch_if_parallel(runner, benches,
                         configs=("baseline", "uu_heuristic"))
    return [build_row(b, runner) for b in benches]


def format_table(rows: List[Table1Row]) -> str:
    header = (f"{'Name':<16} {'Category':<30} {'L':>3} {'%C':>7} "
              f"{'Baseline (ms)':>20} {'Heuristic (ms)':>20} "
              f"{'Speedup':>8} {'Paper':>8}")
    lines = ["TABLE I — Overview of Benchmarks (simulated; ms anchored to "
             "paper baselines)", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:<16} {row.category:<30} {row.loops:>3} "
            f"{row.compute_percent:>6.2f}% "
            f"{row.baseline_mean_ms:>12.2f} ±{row.baseline_rsd:>5.2f}% "
            f"{row.heuristic_mean_ms:>12.2f} ±{row.heuristic_rsd:>5.2f}% "
            f"{row.speedup:>7.2f}x {row.paper_speedup:>7.2f}x")
    return "\n".join(lines)


def main() -> None:
    rows = build_table()
    print(format_table(rows))


if __name__ == "__main__":
    main()
