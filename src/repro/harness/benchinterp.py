"""Engine micro-benchmark: batched vs per-warp interpreter throughput.

``python -m repro bench-interp`` times three IR micro-kernels chosen to
pin down the launch-vectorized engine's performance envelope:

* ``uniform``   — every warp runs the same arithmetic loop.  The batched
  engine executes the whole launch as one ``(n_warps, 32)`` lattice and
  is expected to clear the 2x acceptance floor comfortably.
* ``divergent`` — lanes split on ``tid & 1`` *inside* every warp.  Both
  branch edges are live in every row, so the rows never disagree on
  scheduling and the launch stays batched: intra-warp divergence costs
  masked lanes (in both engines, identically), not batching.
* ``staggered`` — the loop trip count depends on the warp index, so the
  warps' control decisions disagree as soon as the shortest warp exits
  and rows demote to the per-warp path one by one.  This is the worst
  case for batching; the acceptance bar is "within ~10% of the serial
  engine", i.e. the batched attempt must be nearly free when it fails.
* ``briefdiv``  — one warp takes a three-instruction prelude the others
  skip, then every warp runs the same long loop.  Before demotion
  hysteresis the lone warp was permanently handed to the per-warp
  engine at the split; with hysteresis it continues as a one-row batch
  and keeps the vectorized (and jit-compiled) fast path.
* ``chain``     — a long memory-free binop/select chain in a uniform
  self-loop: the jit's expression fuser collapses the whole body into
  one generated closure, so this kernel measures fusion headroom pure.
* ``chaindia``  — the same chain split around an intra-warp divergent
  diamond: fused segments bracket a masked R_DIAMOND, pinning the cost
  of fusion boundaries at control flow the fuser must not cross.

Besides the real engines, the jit is timed twice — once as ``jit``
(fusion on, the default) and once as ``jit-nofuse`` (``REPRO_JIT_FUSE=0``
for the duration of those launches) — so the fuser's contribution is a
column, not a guess.

Before any timing is reported the two engines' :class:`Counters` (and
return buffers) are asserted equal — a benchmark comparing two engines
that computed different things would be meaningless, and the check
doubles as a quick sanity pass over the bit-identicality contract that
``tests/test_engine_equivalence.py`` enforces exhaustively.

Throughput is *warp-steps/sec*: ``inst_executed`` (one count per
instruction issued per warp) divided by median-of-``repeats`` wall time.
Warp-steps are engine-invariant, so the ratio of the two throughputs is
a pure wall-clock speedup.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from datetime import date
from pathlib import Path
from statistics import median
from typing import Dict, List, Optional, Tuple

from ..gpu.counters import Counters
from ..gpu.fuser import FUSE_ENV
from ..gpu.machine import ENGINES, WARP_SIZE, SimtMachine
from ..gpu.memory import Memory
from ..ir.parser import parse_module

#: (name, needs output buffer, IR text).  The loop bound arrives as %n so
#: the workload scales without reparsing.
_KERNELS: Tuple[Tuple[str, bool, str], ...] = (
    ("uniform", False, """
define i64 @uniform(i64 %n) {
entry:
  %tid = call i64 @tid.x()
  %ctaid = call i64 @ctaid.x()
  %ntid = call i64 @ntid.x()
  %base = mul i64 %ctaid, %ntid
  %gid = add i64 %base, %tid
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %acc = phi i64 [ 0, %entry ], [ %acc.next, %loop ]
  %t = mul i64 %i, 1103515245
  %t2 = add i64 %t, %gid
  %t3 = lshr i64 %t2, 7
  %t4 = and i64 %t3, 1023
  %acc.next = add i64 %acc, %t4
  %i.next = add i64 %i, 1
  %done = icmp sge i64 %i.next, %n
  br i1 %done, label %exit, label %loop
exit:
  ret i64 %acc.next
}
"""),
    ("divergent", False, """
define i64 @divergent(i64 %n) {
entry:
  %tid = call i64 @tid.x()
  %bit = and i64 %tid, 1
  %odd = icmp eq i64 %bit, 1
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %latch ]
  %acc = phi i64 [ 0, %entry ], [ %acc.next, %latch ]
  br i1 %odd, label %oddpath, label %evenpath
oddpath:
  %a = mul i64 %acc, 3
  %a1 = add i64 %a, %i
  br label %latch
evenpath:
  %b = add i64 %acc, %i
  %b1 = mul i64 %b, 5
  br label %latch
latch:
  %acc.next = phi i64 [ %a1, %oddpath ], [ %b1, %evenpath ]
  %i.next = add i64 %i, 1
  %done = icmp sge i64 %i.next, %n
  br i1 %done, label %exit, label %loop
exit:
  ret i64 %acc.next
}
"""),
    ("staggered", True, """
define void @staggered(i64* %buf, i64 %n) {
entry:
  %tid = call i64 @tid.x()
  %ctaid = call i64 @ctaid.x()
  %ntid = call i64 @ntid.x()
  %base = mul i64 %ctaid, %ntid
  %gid = add i64 %base, %tid
  %warp = lshr i64 %gid, 5
  %extra = mul i64 %warp, 3
  %trip = add i64 %n, %extra
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %acc = phi i64 [ 0, %entry ], [ %acc.next, %loop ]
  %t = mul i64 %acc, 7
  %acc.next = add i64 %t, %i
  %i.next = add i64 %i, 1
  %done = icmp sge i64 %i.next, %trip
  br i1 %done, label %exit, label %loop
exit:
  %addr = gep i64* %buf, i64 %gid
  store i64 %acc.next, i64* %addr
  ret void
}
"""),
    ("briefdiv", False, """
define i64 @briefdiv(i64 %n) {
entry:
  %tid = call i64 @tid.x()
  %ctaid = call i64 @ctaid.x()
  %ntid = call i64 @ntid.x()
  %base = mul i64 %ctaid, %ntid
  %gid = add i64 %base, %tid
  %first = icmp slt i64 %gid, 32
  br i1 %first, label %prelude, label %main
prelude:
  %p0 = mul i64 %gid, 17
  %p = add i64 %p0, 3
  br label %main
main:
  %seed = phi i64 [ %p, %prelude ], [ %gid, %entry ]
  br label %loop
loop:
  %i = phi i64 [ 0, %main ], [ %i.next, %loop ]
  %acc = phi i64 [ %seed, %main ], [ %acc.next, %loop ]
  %t = mul i64 %acc, 1103515245
  %t2 = add i64 %t, %i
  %t3 = lshr i64 %t2, 7
  %acc.next = add i64 %t3, %t2
  %i.next = add i64 %i, 1
  %done = icmp sge i64 %i.next, %n
  br i1 %done, label %exit, label %loop
exit:
  ret i64 %acc.next
}
"""),
    ("chain", False, """
define i64 @chain(i64 %n) {
entry:
  %tid = call i64 @tid.x()
  %ctaid = call i64 @ctaid.x()
  %ntid = call i64 @ntid.x()
  %base = mul i64 %ctaid, %ntid
  %gid = add i64 %base, %tid
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %acc = phi i64 [ %gid, %entry ], [ %acc.next, %loop ]
  %t1 = mul i64 %acc, 1103515245
  %t2 = add i64 %t1, 12345
  %t3 = xor i64 %t2, %i
  %t4 = lshr i64 %t3, 9
  %t5 = add i64 %t4, %t2
  %t6 = mul i64 %t5, 69069
  %t7 = xor i64 %t6, %t4
  %t8 = lshr i64 %t7, 5
  %t9 = add i64 %t8, %t6
  %t10 = and i64 %t9, 1048575
  %big = icmp sgt i64 %t10, 524287
  %sel = select i1 %big, i64 %t9, i64 %t10
  %acc.next = and i64 %sel, 16777215
  %i.next = add i64 %i, 1
  %done = icmp sge i64 %i.next, %n
  br i1 %done, label %exit, label %loop
exit:
  ret i64 %acc.next
}
"""),
    ("chaindia", False, """
define i64 @chaindia(i64 %n) {
entry:
  %tid = call i64 @tid.x()
  %bit = and i64 %tid, 1
  %odd = icmp eq i64 %bit, 1
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %join ]
  %acc = phi i64 [ %tid, %entry ], [ %acc.next, %join ]
  %t1 = mul i64 %acc, 1103515245
  %t2 = add i64 %t1, 12345
  %t3 = xor i64 %t2, %i
  %t4 = lshr i64 %t3, 9
  %t5 = add i64 %t4, %t2
  br i1 %odd, label %a, label %b
a:
  %x = mul i64 %t5, 3
  br label %join
b:
  %y = add i64 %t5, 7
  br label %join
join:
  %m = phi i64 [ %x, %a ], [ %y, %b ]
  %u1 = xor i64 %m, %t4
  %u2 = lshr i64 %u1, 3
  %u3 = add i64 %u2, %m
  %acc.next = and i64 %u3, 1048575
  %i.next = add i64 %i, 1
  %done = icmp sge i64 %i.next, %n
  br i1 %done, label %exit, label %loop
exit:
  ret i64 %acc.next
}
"""),
)

#: Loop bound handed to every kernel as %n.
DEFAULT_TRIPS = 200

#: What gets timed: the real engines plus the fusion-disabled jit
#: pseudo-engine (``REPRO_JIT_FUSE=0`` scoped to its launches).
TIMED_ENGINES = ENGINES + ("jit-nofuse",)


@dataclass
class KernelTiming:
    """Median timing of one kernel under both engines."""

    kernel: str
    warp_steps: int                 #: inst_executed, engine-invariant
    seconds: Dict[str, float]       #: engine -> median wall seconds
    cycles: float                   #: simulated cycles (identical)

    def throughput(self, engine: str) -> float:
        return self.warp_steps / self.seconds[engine]

    @property
    def speedup(self) -> float:
        """Batched throughput over per-warp throughput."""
        return self.seconds["warp"] / self.seconds["batched"]

    @property
    def jit_speedup(self) -> float:
        """Jit throughput over per-warp throughput."""
        return self.seconds["warp"] / self.seconds["jit"]

    @property
    def jit_vs_batched(self) -> float:
        """Jit throughput over batched throughput."""
        return self.seconds["batched"] / self.seconds["jit"]

    @property
    def fused_speedup(self) -> float:
        """Fused jit throughput over fusion-disabled jit throughput."""
        return self.seconds["jit-nofuse"] / self.seconds["jit"]


class EngineMismatch(AssertionError):
    """The two engines disagreed — the benchmark refuses to time them."""


def _launch_once(text: str, name: str, needs_buf: bool, engine: str,
                 warps: int, trips: int):
    """One fresh launch; returns ``(counters, return_or_buffer_bytes)``."""
    if engine == "jit-nofuse":
        # The fusion-disabled jit is a measurement configuration, not a
        # real engine: scope REPRO_JIT_FUSE=0 to exactly this launch.
        prev = os.environ.get(FUSE_ENV)
        os.environ[FUSE_ENV] = "0"
        try:
            return _launch_once(text, name, needs_buf, "jit", warps, trips)
        finally:
            if prev is None:
                os.environ.pop(FUSE_ENV, None)
            else:
                os.environ[FUSE_ENV] = prev
    module = parse_module(text, name)
    memory = Memory()
    block_dim = warps * WARP_SIZE
    args: List = []
    if needs_buf:
        args.append(memory.alloc("buf", "i64", block_dim))
    args.append(trips)
    machine = SimtMachine(module, memory, engine=engine)
    result = machine.launch(name, 1, block_dim, args)
    if needs_buf:
        payload = memory.read_back("buf").tobytes()
    else:
        payload = result.return_values.tobytes()
    return result.counters, payload


def _check_identical(kernel: str, ref: Counters, ref_payload: bytes,
                     got: Counters, got_payload: bytes) -> None:
    if got_payload != ref_payload:
        raise EngineMismatch(f"{kernel}: engines produced different outputs")
    if got != ref:
        raise EngineMismatch(
            f"{kernel}: engines produced different counters:\n"
            f"  batched: {ref}\n  warp:    {got}")


def bench_kernel(name: str, needs_buf: bool, text: str, warps: int,
                 repeats: int, trips: int = DEFAULT_TRIPS) -> KernelTiming:
    """Time one kernel under both engines (median of ``repeats``)."""
    reference: Optional[Tuple[Counters, bytes]] = None
    seconds: Dict[str, float] = {}
    for engine in TIMED_ENGINES:
        samples = []
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            counters, payload = _launch_once(text, name, needs_buf, engine,
                                             warps, trips)
            samples.append(time.perf_counter() - start)
        if reference is None:
            reference = (counters, payload)
        else:
            _check_identical(name, reference[0], reference[1],
                             counters, payload)
        seconds[engine] = median(samples)
    assert reference is not None
    return KernelTiming(kernel=name, warp_steps=reference[0].inst_executed,
                        seconds=seconds, cycles=reference[0].cycles)


def bench_all(warps: int = 8, repeats: int = 3,
              trips: int = DEFAULT_TRIPS) -> List[KernelTiming]:
    if warps < 2:
        raise ValueError("bench-interp needs >= 2 warps to batch anything")
    return [bench_kernel(name, needs_buf, text, warps, repeats, trips)
            for name, needs_buf, text in _KERNELS]


def format_report(rows: List[KernelTiming], warps: int) -> str:
    lines = [
        f"Interpreter engine micro-benchmark "
        f"({warps} warps x {WARP_SIZE} lanes, warp-steps/sec, "
        f"median wall time; engines verified bit-identical):",
        f"{'kernel':<12} {'warp-steps':>10} {'warp':>12} "
        f"{'batched':>12} {'jit':>12} {'batched':>8} {'jit':>8} "
        f"{'fused':>8}",
        "-" * 89,
    ]
    for row in rows:
        lines.append(
            f"{row.kernel:<12} {row.warp_steps:>10} "
            f"{row.throughput('warp'):>12.0f} "
            f"{row.throughput('batched'):>12.0f} "
            f"{row.throughput('jit'):>12.0f} "
            f"{row.speedup:>7.2f}x "
            f"{row.jit_speedup:>7.2f}x "
            f"{row.fused_speedup:>7.2f}x")
    return "\n".join(lines)


def format_compare(rows: List[KernelTiming], warps: int) -> str:
    """Per-engine wall times side by side (``bench-interp --compare``).

    One row per (kernel, engine) with the median wall milliseconds and
    the ratios against per-warp and batched — the view to read when
    deciding which engine a workload shape favors, where
    :func:`format_report` answers "how fast is each engine overall".
    """
    lines = [
        f"Engine comparison ({warps} warps x {WARP_SIZE} lanes, median "
        f"wall ms, lower is better; engines verified bit-identical):",
        f"{'kernel':<12} {'engine':<10} {'ms':>10} "
        f"{'vs warp':>9} {'vs batched':>11}",
        "-" * 56,
    ]
    for row in rows:
        warp_s = row.seconds["warp"]
        batched_s = row.seconds["batched"]
        for i, engine in enumerate(("warp", "batched", "jit",
                                    "jit-nofuse")):
            s = row.seconds[engine]
            lines.append(
                f"{row.kernel if i == 0 else '':<12} {engine:<10} "
                f"{s * 1e3:>10.2f} {warp_s / s:>8.2f}x "
                f"{batched_s / s:>10.2f}x")
    return "\n".join(lines)


def run_report(warps: int = 8, repeats: int = 3,
               trips: int = DEFAULT_TRIPS) -> str:
    return format_report(bench_all(warps, repeats, trips), warps)


# -- machine-readable export -------------------------------------------------

def default_bench_json_path() -> Path:
    """``results/BENCH_<YYYY-MM-DD>.json`` at the repository root."""
    root = Path(__file__).resolve().parents[3] / "results"
    return root / f"BENCH_{date.today().isoformat()}.json"


def bench_provenance() -> Dict[str, str]:
    """Where a benchmark record came from, so perf-history entries are
    comparable across environments (satellite of the perf sentinel)."""
    from ..gpu.timing import TIMING_MODEL_VERSION
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "timing_model": str(TIMING_MODEL_VERSION),
    }


def bench_json_payload(rows: List[KernelTiming], warps: int, trips: int,
                       source: str) -> Dict:
    """The shared machine-readable shape (``repro bench-interp --json``
    and the perf-smoke benchmark both emit it).

    Schema v2 added ``provenance``; readers tolerate v1 records (the
    perf sentinel treats provenance as optional).
    """
    return {
        "schema": 2,
        "source": source,
        "provenance": bench_provenance(),
        "warps": warps,
        "lanes": WARP_SIZE,
        "trips": trips,
        "kernels": [
            {
                "kernel": row.kernel,
                "warp_steps": row.warp_steps,
                "cycles": row.cycles,
                "seconds": {engine: row.seconds[engine]
                            for engine in sorted(row.seconds)},
                "warp_steps_per_sec": {engine: row.throughput(engine)
                                       for engine in sorted(row.seconds)},
                "batched_speedup": row.speedup,
                "jit_speedup": row.jit_speedup,
                "jit_vs_batched": row.jit_vs_batched,
                "fused_speedup": row.fused_speedup,
            }
            for row in rows
        ],
    }


def write_bench_json(rows: List[KernelTiming], warps: int, trips: int,
                     path: Optional[os.PathLike] = None,
                     source: str = "bench-interp") -> Path:
    """Write the engine-throughput payload; returns the path written."""
    target = Path(path) if path is not None else default_bench_json_path()
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = bench_json_payload(rows, warps, trips, source)
    target.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    return target


if __name__ == "__main__":
    print(run_report())
