"""Figure 8: per-loop scatter of u&u speedup vs unroll (8a) / unmerge (8b).

Each point is one (loop, factor): x = u&u speedup on that loop, y = the
comparator's speedup on the same loop.  Points below the diagonal favour
u&u; points on it are ties.  The paper reads two conclusions off these
plots: several loops only u&u can speed up, and unmerge alone is typically
ineffective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..bench import all_benchmarks
from ..bench.base import Benchmark
from .experiment import UNROLL_FACTORS, ExperimentRunner
from .parallel import prefetch_if_parallel


@dataclass
class ScatterPoint:
    app: str
    loop_id: str
    factor: int
    uu_speedup: float
    other_speedup: float

    @property
    def below_diagonal(self) -> bool:
        """True when u&u wins on this loop."""
        return self.uu_speedup > self.other_speedup


def series(comparator: str,
           runner: Optional[ExperimentRunner] = None,
           benches: Optional[List[Benchmark]] = None) -> List[ScatterPoint]:
    """``comparator`` is ``"unroll"`` (Fig 8a) or ``"unmerge"`` (Fig 8b)."""
    if comparator not in ("unroll", "unmerge"):
        raise ValueError("comparator must be 'unroll' or 'unmerge'")
    runner = runner or ExperimentRunner()
    benches = benches if benches is not None else all_benchmarks()
    prefetch_if_parallel(runner, benches,
                         configs=("baseline", "uu", comparator))
    points: List[ScatterPoint] = []
    for bench in benches:
        base = runner.baseline(bench)
        for loop_id in bench.loop_ids():
            for factor in UNROLL_FACTORS:
                uu = runner.cell(bench, "uu", loop_id, factor)
                if comparator == "unroll":
                    other = runner.cell(bench, "unroll", loop_id, factor)
                else:
                    other = runner.cell(bench, "unmerge", loop_id, 1)
                points.append(ScatterPoint(
                    bench.name, loop_id, factor,
                    uu.speedup_over(base), other.speedup_over(base)))
    return points


def format_figure(points: List[ScatterPoint], comparator: str) -> str:
    label = "Fig 8a — u&u vs unroll" if comparator == "unroll" \
        else "Fig 8b — u&u vs unmerge"
    lines = [f"{label} (per loop; x=u&u, y={comparator})"]
    header = (f"{'App':<16} {'Loop':<20} {'u':>3} {'u&u':>8} "
              f"{comparator:>8}  winner")
    lines.append(header)
    lines.append("-" * len(header))
    for p in points:
        winner = "u&u" if p.below_diagonal else (
            comparator if p.other_speedup > p.uu_speedup else "tie")
        lines.append(f"{p.app:<16} {p.loop_id:<20} {p.factor:>3} "
                     f"{p.uu_speedup:>7.3f}x {p.other_speedup:>7.3f}x  "
                     f"{winner}")
    return "\n".join(lines)


def main() -> None:
    runner = ExperimentRunner()
    for comparator in ("unroll", "unmerge"):
        print(format_figure(series(comparator, runner), comparator))
        print()


if __name__ == "__main__":
    main()
