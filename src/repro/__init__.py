"""repro — reproduction of "Enhancing Performance through Control-Flow
Unmerging and Loop Unrolling on GPUs" (CGO 2024).

Layered public API:

* :mod:`repro.ir` — the SSA IR everything operates on;
* :mod:`repro.analysis` — dominators, loops, cost model, divergence;
* :mod:`repro.transforms` — u&u and the -O3-like cleanup pipeline
  (``compile_module`` is the main entry point);
* :mod:`repro.frontend` — structured kernel AST + SSA lowering;
* :mod:`repro.gpu` — the SIMT simulator standing in for the paper's V100;
* :mod:`repro.codegen` — PTX-style assembly backend for inspection and
  assembly-level statistics (the paper's Listing 4/5 view);
* :mod:`repro.bench` — the 16 HeCBench benchmark analogs (Table I);
* :mod:`repro.harness` — regenerates Table I and Figures 6-8.

Quickstart::

    from repro.bench import benchmark_by_name
    from repro.harness import ExperimentRunner

    runner = ExperimentRunner()
    bench = benchmark_by_name("XSBench")
    base = runner.baseline(bench)
    uu = runner.cell(bench, "uu", loop_id="grid_search:0", factor=2)
    print("speedup:", uu.speedup_over(base))
"""

__version__ = "1.0.0"

from . import analysis, bench, codegen, frontend, gpu, harness, ir, transforms

__all__ = ["analysis", "bench", "codegen", "frontend", "gpu", "harness",
           "ir", "transforms", "__version__"]
