"""PTX-style assembly backend (the paper's Section V listing view)."""

from .lower import (AsmBlock, AsmFunction, AsmInstruction, PTXLowering,
                    lower_function, render)
from .regs import RegisterFile, register_class

__all__ = [
    "AsmInstruction", "AsmBlock", "AsmFunction", "PTXLowering",
    "lower_function", "render",
    "RegisterFile", "register_class",
]
