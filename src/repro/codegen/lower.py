"""Lowering IR functions to PTX-style assembly.

Produces the NVPTX-flavoured text the paper's Section V listings show:
``setp``/``selp``/``@%p bra`` forms, ``ld.global``/``st.global``, ``shl`` +
``add`` address arithmetic from GEPs, and ``mov`` instructions materialising
phi nodes on the incoming edges (the data movement nvprof counts in
``inst_misc``).  Block layout follows the function's block order, and
unconditional branches to the fall-through block are elided, as a real
assembler's layout pass would.

This backend exists for inspection and assembly-level statistics (the
reproduction's analogue of the paper's PTX analysis); the SIMT simulator
executes the IR directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.block import BasicBlock
from ..ir.constants import ConstantFloat, ConstantInt, Undef
from ..ir.function import Function
from ..ir.instructions import (AllocaInst, BinaryInst, BranchInst, CallInst,
                               CastInst, CondBranchInst, FCmpInst, GEPInst,
                               ICmpInst, Instruction, LoadInst, PhiInst,
                               RetInst, SelectInst, StoreInst,
                               UnreachableInst)
from ..ir.types import FloatType, IntType, PointerType, Type
from ..ir.values import Argument, GlobalVariable, Value
from .regs import RegisterFile, register_class


@dataclass
class AsmInstruction:
    """One assembly line: opcode plus formatted operand string."""

    opcode: str          # e.g. "selp.b64", "add.s64", "@%p1 bra"
    operands: str        # Pre-formatted operand list.
    category: str        # int / fp / misc / control / load / store / special

    def render(self) -> str:
        if self.operands:
            return f"{self.opcode} \t{self.operands};"
        return f"{self.opcode};"


@dataclass
class AsmBlock:
    label: str
    instructions: List[AsmInstruction] = field(default_factory=list)


@dataclass
class AsmFunction:
    """Lowered function: labeled blocks plus register declarations."""

    name: str
    params: List[Tuple[str, str]]            # (ptx type, name)
    blocks: List[AsmBlock]
    reg_decls: Dict[str, int]

    def instruction_count(self) -> int:
        return sum(len(b.instructions) for b in self.blocks)

    def count_opcode(self, prefix: str) -> int:
        """Number of instructions whose mnemonic starts with ``prefix``.

        Predicated forms ("@%p1 bra") count under their mnemonic ("bra").
        ``selp``/``mov``/``setp``/``bra`` counts reproduce the paper's
        Listing 4 vs Listing 5 comparison.
        """
        total = 0
        for block in self.blocks:
            for inst in block.instructions:
                mnemonic = inst.opcode.split()[-1]
                if mnemonic.startswith(prefix):
                    total += 1
        return total

    def category_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for block in self.blocks:
            for inst in block.instructions:
                counts[inst.category] = counts.get(inst.category, 0) + 1
        return counts


def _suffix(type_: Type, signed: bool = True) -> str:
    """PTX type suffix (``.s64``, ``.f64``, ``.b64``, ...)."""
    if isinstance(type_, PointerType):
        return "u64"
    if isinstance(type_, IntType):
        if type_.bits == 1:
            return "pred"
        kind = "s" if signed else "u"
        return f"{kind}{max(type_.bits, 32)}"
    if isinstance(type_, FloatType):
        return f"f{type_.bits}"
    raise TypeError(f"no PTX suffix for {type_!r}")


_BINOP_TABLE = {
    "add": ("add", True), "sub": ("sub", True), "mul": ("mul.lo", True),
    "sdiv": ("div", True), "udiv": ("div", False),
    "srem": ("rem", True), "urem": ("rem", False),
    "shl": ("shl", True), "ashr": ("shr", True), "lshr": ("shr", False),
    "and": ("and", True), "or": ("or", True), "xor": ("xor", True),
    "fadd": ("add", True), "fsub": ("sub", True), "fmul": ("mul", True),
    "fdiv": ("div.rn", True), "frem": ("rem", True),
}

_SPECIAL_REGS = {"tid.x": "%tid.x", "ctaid.x": "%ctaid.x",
                 "ntid.x": "%ntid.x", "nctaid.x": "%nctaid.x"}

_MATH_OPS = {"sqrt": "sqrt.rn", "fabs": "abs", "exp": "ex2.approx",
             "log": "lg2.approx", "sin": "sin.approx", "cos": "cos.approx",
             "pow": "pow.approx", "fma": "fma.rn", "min": "min",
             "max": "max", "fmin": "min", "fmax": "max",
             "atan": "atan.approx", "floor": "cvt.rmi"}


class PTXLowering:
    """Lowers one IR function to :class:`AsmFunction`."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.regs = RegisterFile()
        self._labels: Dict[int, str] = {}
        self._param_regs: Dict[int, str] = {}

    def lower(self) -> AsmFunction:
        func = self.func
        for i, block in enumerate(func.blocks):
            self._labels[id(block)] = f"$L_{func.name}_{i}"

        params = [(self._param_type(arg.type), arg.name) for arg in func.args]
        blocks: List[AsmBlock] = []
        for i, block in enumerate(func.blocks):
            asm = AsmBlock(self._labels[id(block)])
            if i == 0:
                self._emit_param_loads(asm)
            fallthrough = func.blocks[i + 1] if i + 1 < len(func.blocks) \
                else None
            self._lower_block(block, asm, fallthrough)
            blocks.append(asm)
        return AsmFunction(func.name, params, blocks,
                           self.regs.declarations())

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _param_type(type_: Type) -> str:
        if isinstance(type_, PointerType):
            return ".u64"
        if isinstance(type_, IntType):
            return f".s{max(type_.bits, 32)}"
        if isinstance(type_, FloatType):
            return f".f{type_.bits}"
        raise TypeError(f"bad param type {type_!r}")

    def _emit_param_loads(self, asm: AsmBlock) -> None:
        for arg in self.func.args:
            reg = self.regs.get(arg)
            asm.instructions.append(AsmInstruction(
                f"ld.param.{_suffix(arg.type)}",
                f"{reg}, [{self.func.name}_param_{arg.index}]", "load"))

    def _operand(self, value: Value) -> str:
        if isinstance(value, ConstantInt):
            return str(value.value)
        if isinstance(value, ConstantFloat):
            return repr(value.value)
        if isinstance(value, Undef):
            return "0"
        if isinstance(value, GlobalVariable):
            return value.name
        return self.regs.get(value)

    def _label(self, block: BasicBlock) -> str:
        return self._labels[id(block)]

    # -- blocks -----------------------------------------------------------
    def _lower_block(self, block: BasicBlock, asm: AsmBlock,
                     fallthrough: Optional[BasicBlock]) -> None:
        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                self.regs.get(inst)  # Reserve the register.
                continue
            if isinstance(inst, (BranchInst, CondBranchInst, RetInst,
                                 UnreachableInst)):
                self._lower_terminator(block, inst, asm, fallthrough)
            else:
                self._lower_compute(inst, asm)

    def _emit_phi_moves(self, pred: BasicBlock, succ: BasicBlock,
                        asm: AsmBlock) -> None:
        """Parallel-copy phi resolution with a scratch register on cycles."""
        moves: List[Tuple[str, str, Type]] = []
        for phi in succ.phis():
            dst = self.regs.get(phi)
            src = self._operand(phi.incoming_for(pred))
            if dst != src:
                moves.append((dst, src, phi.type))
        # Topologically order moves so no destination is clobbered before it
        # is read; break cycles with a scratch register.
        pending = list(moves)
        emitted: List[Tuple[str, str, Type]] = []
        while pending:
            progress = False
            for i, (dst, src, t) in enumerate(pending):
                # Safe to emit when no *other* pending move still reads dst.
                if all(dst != other_src for j, (_, other_src, _)
                       in enumerate(pending) if j != i):
                    emitted.append((dst, src, t))
                    del pending[i]
                    progress = True
                    break
            if not progress:
                # Cycle: rotate through a scratch register.
                dst, src, t = pending[0]
                scratch = self.regs.fresh(t)
                emitted.append((scratch, dst, t))
                for j, (d2, s2, t2) in enumerate(pending):
                    if s2 == dst:
                        pending[j] = (d2, scratch, t2)
        for dst, src, t in emitted:
            bits = "pred" if t.is_bool else \
                f"u{64 if register_class(t) in ('rd', 'fd') else 32}" \
                if isinstance(t, (IntType, PointerType)) else \
                f"f{t.bits}"  # type: ignore[attr-defined]
            asm.instructions.append(
                AsmInstruction(f"mov.{bits}", f"{dst}, {src}", "misc"))

    # -- terminators -----------------------------------------------------------
    def _lower_terminator(self, block: BasicBlock, inst: Instruction,
                          asm: AsmBlock,
                          fallthrough: Optional[BasicBlock]) -> None:
        if isinstance(inst, BranchInst):
            self._emit_phi_moves(block, inst.target, asm)
            if inst.target is not fallthrough:
                asm.instructions.append(AsmInstruction(
                    "bra.uni", self._label(inst.target), "control"))
            return
        if isinstance(inst, CondBranchInst):
            pred = self._operand(inst.condition)
            # Phi moves must respect the edge; when either successor has
            # phis we emit the taken-side moves under the predicate by
            # splitting: moves for the true edge guarded, then false edge.
            t_has = bool(inst.true_target.phis())
            f_has = bool(inst.false_target.phis())
            if not t_has and not f_has:
                asm.instructions.append(AsmInstruction(
                    f"@{pred} bra", self._label(inst.true_target), "control"))
                if inst.false_target is not fallthrough:
                    asm.instructions.append(AsmInstruction(
                        "bra.uni", self._label(inst.false_target), "control"))
                return
            # Emit: @!p bra FALSE_TRAMPOLINE; <true moves>; bra TRUE.
            asm.instructions.append(AsmInstruction(
                f"@!{pred} bra", f"{self._label(block)}_f", "control"))
            self._emit_phi_moves(block, inst.true_target, asm)
            asm.instructions.append(AsmInstruction(
                "bra.uni", self._label(inst.true_target), "control"))
            asm.instructions.append(AsmInstruction(
                f"{self._label(block)}_f:", "", "control"))
            self._emit_phi_moves(block, inst.false_target, asm)
            if inst.false_target is not fallthrough:
                asm.instructions.append(AsmInstruction(
                    "bra.uni", self._label(inst.false_target), "control"))
            return
        if isinstance(inst, RetInst):
            if inst.value is not None:
                asm.instructions.append(AsmInstruction(
                    f"st.param.{_suffix(inst.value.type)}",
                    f"[func_retval0+0], {self._operand(inst.value)}",
                    "store"))
            asm.instructions.append(AsmInstruction("ret", "", "control"))
            return
        if isinstance(inst, UnreachableInst):
            asm.instructions.append(AsmInstruction("trap", "", "control"))

    # -- computation -----------------------------------------------------------
    def _lower_compute(self, inst: Instruction, asm: AsmBlock) -> None:
        out = lambda op, fmt, cat: asm.instructions.append(
            AsmInstruction(op, fmt, cat))

        if isinstance(inst, BinaryInst):
            base, signed = _BINOP_TABLE[inst.opcode]
            if isinstance(inst.type, FloatType) and base == "div":
                base = "div.rn"
            suffix = _suffix(inst.type, signed)
            if inst.opcode in ("and", "or", "xor", "shl"):
                suffix = f"b{max(getattr(inst.type, 'bits', 64), 32)}"
            cat = "fp" if isinstance(inst.type, FloatType) else "int"
            out(f"{base}.{suffix}",
                f"{self.regs.get(inst)}, {self._operand(inst.lhs)}, "
                f"{self._operand(inst.rhs)}", cat)
        elif isinstance(inst, (ICmpInst, FCmpInst)):
            ty = inst.lhs.type
            out(f"setp.{inst.predicate}.{_suffix(ty)}",
                f"{self.regs.get(inst)}, {self._operand(inst.lhs)}, "
                f"{self._operand(inst.rhs)}",
                "fp" if isinstance(ty, FloatType) else "int")
        elif isinstance(inst, SelectInst):
            bits = 64 if register_class(inst.type) in ("rd", "fd") else 32
            out(f"selp.b{bits}",
                f"{self.regs.get(inst)}, {self._operand(inst.true_value)}, "
                f"{self._operand(inst.false_value)}, "
                f"{self._operand(inst.condition)}", "misc")
        elif isinstance(inst, CastInst):
            out(f"cvt.{_suffix(inst.type)}.{_suffix(inst.value.type)}",
                f"{self.regs.get(inst)}, {self._operand(inst.value)}",
                "misc")
        elif isinstance(inst, GEPInst):
            # shl + add address arithmetic, exactly as in paper Listing 4.
            elem = inst.element_type.size_bytes()
            shift = {1: 0, 2: 1, 4: 2, 8: 3}.get(elem)
            scratch = self.regs.fresh(inst.type)
            if shift:
                out("shl.b64",
                    f"{scratch}, {self._operand(inst.index)}, {shift}", "int")
            else:
                out("mov.u64",
                    f"{scratch}, {self._operand(inst.index)}", "misc")
            out("add.s64",
                f"{self.regs.get(inst)}, {self._operand(inst.pointer)}, "
                f"{scratch}", "int")
        elif isinstance(inst, LoadInst):
            out(f"ld.global.{_suffix(inst.type)}",
                f"{self.regs.get(inst)}, [{self._operand(inst.pointer)}]",
                "load")
        elif isinstance(inst, StoreInst):
            out(f"st.global.{_suffix(inst.value.type)}",
                f"[{self._operand(inst.pointer)}], "
                f"{self._operand(inst.value)}", "store")
        elif isinstance(inst, AllocaInst):
            out("mov.u64", f"{self.regs.get(inst)}, __local_depot", "misc")
        elif isinstance(inst, CallInst):
            name = inst.intrinsic.name
            if name in _SPECIAL_REGS:
                out("mov.u32",
                    f"{self.regs.get(inst)}, {_SPECIAL_REGS[name]}", "misc")
            elif name == "syncthreads":
                out("bar.sync", "0", "control")
            else:
                op = _MATH_OPS.get(name, name)
                args = ", ".join(self._operand(a) for a in inst.operands)
                out(f"{op}.{_suffix(inst.type)}",
                    f"{self.regs.get(inst)}, {args}", "fp")
        else:
            raise NotImplementedError(f"cannot lower {inst!r}")


def lower_function(func: Function) -> AsmFunction:
    """Lower one IR function to PTX-style assembly."""
    return PTXLowering(func).lower()


def render(asm: AsmFunction) -> str:
    """Render a lowered function as PTX-flavoured text."""
    lines = [f".visible .entry {asm.name}("]
    lines.extend(f"    .param {t} {asm.name}_param_{i}"
                 + ("," if i < len(asm.params) - 1 else "")
                 for i, (t, _) in enumerate(asm.params))
    lines.append(")")
    lines.append("{")
    for cls, count in sorted(asm.reg_decls.items()):
        ptx_t = {"rd": ".b64", "r": ".b32", "fd": ".f64", "f": ".f32",
                 "p": ".pred"}[cls]
        lines.append(f"    .reg {ptx_t} \t%{cls}<{count + 1}>;")
    lines.append("")
    for block in asm.blocks:
        lines.append(f"{block.label}:")
        for inst in block.instructions:
            if inst.opcode.endswith(":"):
                lines.append(f"{inst.opcode}")
            else:
                lines.append(f"    {inst.render()}")
    lines.append("}")
    return "\n".join(lines)
