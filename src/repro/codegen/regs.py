"""PTX-style virtual register assignment.

PTX is itself a virtual-register ISA (ptxas does the physical allocation),
so "register allocation" here is faithful to what the paper's listings
show: one register class per type, sequentially numbered —
``%rd`` (64-bit int/pointer), ``%r`` (32-bit int), ``%fd`` (f64),
``%f`` (f32), ``%p`` (predicates).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ir.types import FloatType, IntType, PointerType, Type
from ..ir.values import Value


def register_class(type_: Type) -> str:
    """PTX register-class prefix for a value of ``type_``."""
    if isinstance(type_, PointerType):
        return "rd"
    if isinstance(type_, IntType):
        if type_.bits == 1:
            return "p"
        return "rd" if type_.bits > 32 else "r"
    if isinstance(type_, FloatType):
        return "fd" if type_.bits == 64 else "f"
    raise TypeError(f"no register class for {type_!r}")


class RegisterFile:
    """Assigns one virtual register per SSA value, per class."""

    def __init__(self) -> None:
        self._assigned: Dict[int, str] = {}
        self._counters: Dict[str, int] = {}

    def get(self, value: Value) -> str:
        reg = self._assigned.get(id(value))
        if reg is None:
            cls = register_class(value.type)
            index = self._counters.get(cls, 0) + 1
            self._counters[cls] = index
            reg = f"%{cls}{index}"
            self._assigned[id(value)] = reg
        return reg

    def fresh(self, type_: Type) -> str:
        """A scratch register not tied to any SSA value (phi cycles)."""
        cls = register_class(type_)
        index = self._counters.get(cls, 0) + 1
        self._counters[cls] = index
        return f"%{cls}{index}"

    def declarations(self) -> Dict[str, int]:
        """Register count per class, for the ``.reg`` directives."""
        return dict(self._counters)
