"""Parser for the textual IR emitted by :mod:`repro.ir.printer`.

The parser exists for tests and tooling: printed modules round-trip, and
hand-written IR snippets make concise unit tests for the transforms.  It is a
straightforward line-oriented recursive-descent parser; forward references
(phi back-edges) are resolved through placeholder patching.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .block import BasicBlock
from .builder import IRBuilder
from .constants import ConstantFloat, ConstantInt, Undef, const
from .function import Function
from .instructions import (AllocaInst, BinaryInst, BranchInst, CallInst,
                           CastInst, CondBranchInst, FCmpInst, GEPInst,
                           ICmpInst, Instruction, LoadInst, PhiInst, RetInst,
                           SelectInst, StoreInst, UnreachableInst,
                           CAST_OPS, FLOAT_BINOPS, INT_BINOPS)
from .module import Module
from .types import FloatType, FunctionType, IntType, Type, VOID, parse_type
from .values import Value


class ParseError(Exception):
    """Raised on malformed IR text."""

    def __init__(self, message: str, line_no: int, line: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")


class _Placeholder(Value):
    """Stands in for a value referenced before its definition."""

    __slots__ = ("ref_name",)

    def __init__(self, type_: Type, ref_name: str) -> None:
        super().__init__(type_, ref_name)
        self.ref_name = ref_name


_DEFINE_RE = re.compile(
    r"define\s+(?P<ret>[\w*]+)\s+@(?P<name>[\w.\-]+)\s*\((?P<args>.*)\)\s*\{")
_GLOBAL_RE = re.compile(
    r"@(?P<name>[\w.\-]+)\s*=\s*global\s+(?P<type>[\w*]+)\s+x\s+(?P<count>\d+)")
_LABEL_RE = re.compile(r"(?P<name>[\w.\-]+):")
_ASSIGN_RE = re.compile(r"%(?P<name>[\w.\-]+)\s*=\s*(?P<rest>.+)")
_PHI_PAIR_RE = re.compile(r"\[\s*(?P<val>[^,\]]+)\s*,\s*%(?P<block>[\w.\-]+)\s*\]")


class _FunctionParser:
    def __init__(self, func: Function, line_no: int) -> None:
        self.func = func
        self.line_no = line_no
        self.blocks: Dict[str, BasicBlock] = {}
        self.values: Dict[str, Value] = {a.name: a for a in func.args}
        self.placeholders: Dict[str, List[_Placeholder]] = {}
        self.current: Optional[BasicBlock] = None

    # -- helpers -----------------------------------------------------------
    def block(self, name: str) -> BasicBlock:
        block = self.blocks.get(name)
        if block is None:
            block = BasicBlock(name)
            self.blocks[name] = block
        return block

    def define(self, name: str, value: Value) -> None:
        if name in self.values:
            raise ParseError(f"redefinition of %{name}", self.line_no, name)
        value.name = name
        self.values[name] = value
        for ph in self.placeholders.pop(name, []):
            ph.replace_all_uses_with(value)

    def operand(self, type_: Type, text: str) -> Value:
        text = text.strip()
        if text == "undef":
            return Undef(type_)
        if text.startswith("%"):
            name = text[1:]
            value = self.values.get(name)
            if value is None:
                ph = _Placeholder(type_, name)
                self.placeholders.setdefault(name, []).append(ph)
                return ph
            return value
        if text.startswith("@"):
            gname = text[1:]
            module = self.func.parent
            if module is None or gname not in module.globals:
                raise ParseError(f"unknown global @{gname}", self.line_no, text)
            return module.globals[gname]
        if isinstance(type_, IntType):
            return ConstantInt(type_, int(text, 0))
        if isinstance(type_, FloatType):
            return ConstantFloat(type_, float(text))
        raise ParseError(f"cannot parse operand {text!r} of type {type_!r}",
                         self.line_no, text)

    def typed_operand(self, text: str) -> Value:
        text = text.strip()
        parts = text.split(None, 1)
        if len(parts) != 2:
            raise ParseError("expected 'type value'", self.line_no, text)
        return self.operand(parse_type(parts[0]), parts[1])


def parse_module(text: str, name: str = "parsed") -> Module:
    """Parse a full module from text."""
    module = Module(name)
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = _strip(lines[i])
        if not line:
            i += 1
            continue
        m = _GLOBAL_RE.match(line)
        if m:
            module.add_global(m.group("name"), parse_type(m.group("type")),
                              int(m.group("count")))
            i += 1
            continue
        m = _DEFINE_RE.match(line)
        if m:
            i = _parse_function(module, lines, i, m)
            continue
        raise ParseError("unexpected top-level construct", i + 1, line)
    return module


def parse_function(text: str, module: Optional[Module] = None) -> Function:
    """Parse a single function (convenience for tests)."""
    module = module if module is not None else Module("parsed")
    before = set(module.functions)
    mod = _parse_into(module, text)
    new_names = [n for n in mod.functions if n not in before]
    if len(new_names) != 1:
        raise ValueError("expected exactly one function definition")
    return mod.functions[new_names[0]]


def _parse_into(module: Module, text: str) -> Module:
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = _strip(lines[i])
        if not line:
            i += 1
            continue
        m = _GLOBAL_RE.match(line)
        if m:
            module.add_global(m.group("name"), parse_type(m.group("type")),
                              int(m.group("count")))
            i += 1
            continue
        m = _DEFINE_RE.match(line)
        if m:
            i = _parse_function(module, lines, i, m)
            continue
        raise ParseError("unexpected top-level construct", i + 1, line)
    return module


def _strip(line: str) -> str:
    # Remove comments (';' to end of line) and whitespace.
    pos = line.find(";")
    if pos >= 0:
        line = line[:pos]
    return line.strip()


def _parse_function(module: Module, lines: List[str], start: int,
                    m: "re.Match[str]") -> int:
    ret_type = parse_type(m.group("ret"))
    arg_text = m.group("args").strip()
    arg_types: List[Type] = []
    arg_names: List[str] = []
    if arg_text:
        for piece in arg_text.split(","):
            parts = piece.split()
            if len(parts) != 2 or not parts[1].startswith("%"):
                raise ParseError("bad argument", start + 1, piece)
            arg_types.append(parse_type(parts[0]))
            arg_names.append(parts[1][1:])
    func = module.add_function(m.group("name"),
                               FunctionType(ret_type, tuple(arg_types)),
                               arg_names)
    fp = _FunctionParser(func, start + 1)

    i = start + 1
    while i < len(lines):
        fp.line_no = i + 1
        line = _strip(lines[i])
        i += 1
        if not line:
            continue
        if line == "}":
            _finish_function(fp)
            return i
        label = re.fullmatch(r"(?P<name>[\w.\-]+):", line)
        if label:
            block = fp.block(label.group("name"))
            func.adopt_block(block)
            fp.current = block
            continue
        if fp.current is None:
            raise ParseError("instruction outside block", i, line)
        _parse_instruction(fp, line)
    raise ParseError("missing closing '}'", len(lines), lines[-1] if lines else "")


def _finish_function(fp: _FunctionParser) -> None:
    unresolved = {n for n, phs in fp.placeholders.items() if phs}
    if unresolved:
        raise ParseError(f"unresolved values: {sorted(unresolved)}",
                         fp.line_no, "")
    # Register block/value names so unique_name never collides.
    for name in list(fp.values) + list(fp.blocks):
        fp.func._name_counts.setdefault(name, 1)


def _parse_instruction(fp: _FunctionParser, line: str) -> None:
    assign = _ASSIGN_RE.match(line)
    name = ""
    rest = line
    if assign and not line.startswith(("store", "br", "ret")):
        name = assign.group("name")
        rest = assign.group("rest").strip()

    inst = _build_instruction(fp, rest)
    assert fp.current is not None
    if isinstance(inst, PhiInst):
        fp.current.insert(fp.current.first_non_phi_index(), inst)
    else:
        fp.current.append(inst)
    if name:
        fp.define(name, inst)


def _build_instruction(fp: _FunctionParser, rest: str) -> Instruction:
    op, _, tail = rest.partition(" ")
    tail = tail.strip()

    if op in INT_BINOPS or op in FLOAT_BINOPS:
        type_text, _, ops = tail.partition(" ")
        type_ = parse_type(type_text)
        lhs_text, rhs_text = _split2(fp, ops)
        return BinaryInst(op, fp.operand(type_, lhs_text),
                          fp.operand(type_, rhs_text))
    if op in ("icmp", "fcmp"):
        pred, _, rest2 = tail.partition(" ")
        type_text, _, ops = rest2.strip().partition(" ")
        type_ = parse_type(type_text)
        lhs_text, rhs_text = _split2(fp, ops)
        cls = ICmpInst if op == "icmp" else FCmpInst
        return cls(pred, fp.operand(type_, lhs_text), fp.operand(type_, rhs_text))
    if op == "select":
        parts = _split_top(tail)
        if len(parts) != 3:
            raise ParseError("select needs 3 operands", fp.line_no, rest)
        cond = fp.typed_operand(parts[0])
        tval = fp.typed_operand(parts[1])
        fval = fp.typed_operand(parts[2])
        return SelectInst(cond, tval, fval)
    if op == "phi":
        type_text, _, pairs_text = tail.partition(" ")
        type_ = parse_type(type_text)
        phi = PhiInst(type_)
        for pm in _PHI_PAIR_RE.finditer(pairs_text):
            value = fp.operand(type_, pm.group("val"))
            phi.add_incoming(value, fp.block(pm.group("block")))
        return phi
    if op in CAST_OPS:
        src_text, _, to_text = tail.partition(" to ")
        value = fp.typed_operand(src_text)
        return CastInst(op, value, parse_type(to_text.strip()))
    if op == "load":
        parts = _split_top(tail)
        if len(parts) != 2:
            raise ParseError("load needs 'type, ptr'", fp.line_no, rest)
        return LoadInst(fp.typed_operand(parts[1]))
    if op == "store":
        parts = _split_top(tail)
        if len(parts) != 2:
            raise ParseError("store needs 'value, ptr'", fp.line_no, rest)
        return StoreInst(fp.typed_operand(parts[0]), fp.typed_operand(parts[1]))
    if op == "gep":
        parts = _split_top(tail)
        if len(parts) != 2:
            raise ParseError("gep needs 'ptr, index'", fp.line_no, rest)
        return GEPInst(fp.typed_operand(parts[0]), fp.typed_operand(parts[1]))
    if op == "alloca":
        parts = _split_top(tail)
        count = int(parts[1]) if len(parts) > 1 else 1
        return AllocaInst(parse_type(parts[0]), count)
    if op == "call":
        m = re.match(r"([\w*]+)\s+@([\w.\-]+)\((.*)\)", tail)
        if not m:
            raise ParseError("malformed call", fp.line_no, rest)
        type_ = parse_type(m.group(1))
        args_text = m.group(3).strip()
        args = [fp.typed_operand(p) for p in _split_top(args_text)] if args_text else []
        return CallInst(m.group(2), args, type_)
    if op == "br":
        if tail.startswith("label"):
            target = tail.split("%", 1)[1].strip()
            return BranchInst(fp.block(target))
        parts = _split_top(tail)
        if len(parts) != 3:
            raise ParseError("malformed condbr", fp.line_no, rest)
        cond = fp.typed_operand(parts[0])
        t_name = parts[1].split("%", 1)[1].strip()
        f_name = parts[2].split("%", 1)[1].strip()
        return CondBranchInst(cond, fp.block(t_name), fp.block(f_name))
    if op == "ret":
        if tail.strip() == "void":
            return RetInst(None)
        return RetInst(fp.typed_operand(tail))
    if op == "unreachable" or rest.strip() == "unreachable":
        return UnreachableInst()
    raise ParseError(f"unknown instruction '{op}'", fp.line_no, rest)


def _split2(fp: _FunctionParser, text: str) -> Tuple[str, str]:
    parts = _split_top(text)
    if len(parts) != 2:
        raise ParseError("expected two operands", fp.line_no, text)
    return parts[0], parts[1]


def _split_top(text: str) -> List[str]:
    """Split on commas that are not nested inside brackets/parens."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    last = "".join(current).strip()
    if last:
        parts.append(last)
    return parts
