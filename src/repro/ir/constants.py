"""Constant values.

Constants are interned per ``(type, value)`` so that identical constants are
one object: value numbering and the simplification passes can then compare
constants with ``is`` and use them as dictionary keys without special cases.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple, Union

from .types import F32, F64, I1, FloatType, IntType, Type
from .values import Value


class Constant(Value):
    """Base class for constants."""

    __slots__ = ()

    @property
    def is_constant(self) -> bool:
        return True


class ConstantInt(Constant):
    """Integer constant, stored signed-wrapped to its width."""

    __slots__ = ("value",)
    _cache: Dict[Tuple[IntType, int], "ConstantInt"] = {}

    def __new__(cls, type_: IntType, value: int) -> "ConstantInt":
        value = type_.wrap(int(value))
        key = (type_, value)
        cached = cls._cache.get(key)
        if cached is not None:
            return cached
        obj = super().__new__(cls)
        Value.__init__(obj, type_, "")
        obj.value = value
        cls._cache[key] = obj
        return obj

    def __init__(self, type_: IntType, value: int) -> None:
        # Initialisation happens in __new__ (interned); nothing to do here.
        pass

    @property
    def is_zero(self) -> bool:
        return self.value == 0

    @property
    def is_one(self) -> bool:
        return self.value == 1

    @property
    def is_true(self) -> bool:
        return self.type is I1 and self.value == 1

    @property
    def is_false(self) -> bool:
        return self.type is I1 and self.value == 0

    def unsigned(self) -> int:
        return self.type.to_unsigned(self.value)

    def short_name(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"<ConstantInt {self.type!r} {self.value}>"


class ConstantFloat(Constant):
    """Floating point constant, canonicalised through its bit pattern."""

    __slots__ = ("value",)
    _cache: Dict[Tuple[FloatType, bytes], "ConstantFloat"] = {}

    def __new__(cls, type_: FloatType, value: float) -> "ConstantFloat":
        value = float(value)
        if type_ is F32:
            # Round-trip through binary32 so the constant matches what the
            # simulated machine would hold.
            value = struct.unpack("f", struct.pack("f", value))[0]
            key_bits = struct.pack("f", value)
        else:
            key_bits = struct.pack("d", value)
        key = (type_, key_bits)
        cached = cls._cache.get(key)
        if cached is not None:
            return cached
        obj = super().__new__(cls)
        Value.__init__(obj, type_, "")
        obj.value = value
        cls._cache[key] = obj
        return obj

    def __init__(self, type_: FloatType, value: float) -> None:
        pass

    @property
    def is_zero(self) -> bool:
        return self.value == 0.0

    def short_name(self) -> str:
        return repr(self.value)

    def __repr__(self) -> str:
        return f"<ConstantFloat {self.type!r} {self.value}>"


class Undef(Constant):
    """An undefined value of a given type."""

    __slots__ = ()
    _cache: Dict[Type, "Undef"] = {}

    def __new__(cls, type_: Type) -> "Undef":
        cached = cls._cache.get(type_)
        if cached is not None:
            return cached
        obj = super().__new__(cls)
        Value.__init__(obj, type_, "")
        cls._cache[type_] = obj
        return obj

    def __init__(self, type_: Type) -> None:
        pass

    def short_name(self) -> str:
        return "undef"

    def __repr__(self) -> str:
        return f"<Undef {self.type!r}>"


NumberLike = Union[int, float]


def const(type_: Type, value: NumberLike) -> Constant:
    """Build the constant of ``type_`` holding ``value``."""
    if isinstance(type_, IntType):
        return ConstantInt(type_, int(value))
    if isinstance(type_, FloatType):
        return ConstantFloat(type_, float(value))
    raise TypeError(f"cannot build a constant of type {type_!r}")


TRUE = ConstantInt(I1, 1)
FALSE = ConstantInt(I1, 0)


def bool_const(flag: bool) -> ConstantInt:
    return TRUE if flag else FALSE


def f64(value: float) -> ConstantFloat:
    return ConstantFloat(F64, value)


def f32(value: float) -> ConstantFloat:
    return ConstantFloat(F32, value)
