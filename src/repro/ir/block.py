"""Basic blocks.

A block owns an ordered list of instructions ending in exactly one
terminator (enforced by the verifier, tolerated transiently during
construction).  Predecessors are derived from terminator successor edges on
demand; functions cache nothing so transforms never work with stale CFGs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from .instructions import Instruction, PhiInst, TerminatorInst
from .types import Type
from .values import Value

if TYPE_CHECKING:
    from .function import Function


class BasicBlock(Value):
    """A straight-line sequence of instructions with one terminator."""

    __slots__ = ("instructions", "parent")

    def __init__(self, name: str = "") -> None:
        from .types import VOID

        super().__init__(VOID, name)
        self.instructions: List[Instruction] = []
        self.parent: Optional["Function"] = None

    # -- structure -----------------------------------------------------------
    @property
    def terminator(self) -> Optional[TerminatorInst]:
        if self.instructions and isinstance(self.instructions[-1], TerminatorInst):
            return self.instructions[-1]
        return None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return term.successors() if term is not None else []

    def predecessors(self) -> List["BasicBlock"]:
        """Blocks that can branch here (in deterministic function order)."""
        if self.parent is None:
            return []
        preds = []
        for block in self.parent.blocks:
            for succ in block.successors():
                if succ is self:
                    preds.append(block)
                    break
        return preds

    def phis(self) -> List[PhiInst]:
        result = []
        for inst in self.instructions:
            if isinstance(inst, PhiInst):
                result.append(inst)
            else:
                break
        return result

    def non_phi_instructions(self) -> Iterator[Instruction]:
        for inst in self.instructions:
            if not isinstance(inst, PhiInst):
                yield inst

    def first_non_phi_index(self) -> int:
        for i, inst in enumerate(self.instructions):
            if not isinstance(inst, PhiInst):
                return i
        return len(self.instructions)

    # -- mutation --------------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        if inst.parent is not None:
            raise ValueError(f"{inst!r} already belongs to a block")
        self.instructions.append(inst)
        inst.parent = self
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        if inst.parent is not None:
            raise ValueError(f"{inst!r} already belongs to a block")
        self.instructions.insert(index, inst)
        inst.parent = self
        return inst

    def insert_before_terminator(self, inst: Instruction) -> Instruction:
        index = len(self.instructions)
        if self.terminator is not None:
            index -= 1
        return self.insert(index, inst)

    def remove_instruction(self, inst: Instruction) -> None:
        for i, existing in enumerate(self.instructions):
            if existing is inst:
                del self.instructions[i]
                inst.parent = None
                return
        raise ValueError(f"{inst!r} not in block {self.name}")

    def replace_terminator(self, new_term: TerminatorInst) -> None:
        old = self.terminator
        if old is not None:
            old.erase_from_parent()
        self.append(new_term)

    # -- queries ---------------------------------------------------------------
    def contains_convergent(self) -> bool:
        return any(inst.is_convergent for inst in self.instructions)

    def short_name(self) -> str:
        return f"%{self.name}" if self.name else f"%bb<{id(self):x}>"

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name} [{len(self.instructions)} insts]>"
