"""SSA intermediate representation.

The IR is the substrate everything else builds on: the transformation passes
rewrite it, the analyses inspect it, and the GPU simulator executes it.  It
deliberately mirrors the LLVM subset the paper's pass operates on.

Public API::

    from repro.ir import (Module, Function, BasicBlock, IRBuilder, types,
                          verify_function, print_function, parse_module)
"""

from . import types
from .block import BasicBlock
from .builder import IRBuilder
from .clone import clone_blocks, clone_instruction, map_value
from .constants import (Constant, ConstantFloat, ConstantInt, FALSE, TRUE,
                        Undef, bool_const, const)
from .function import Function
from .instructions import (AllocaInst, BinaryInst, BranchInst, CallInst,
                           CastInst, CondBranchInst, FCmpInst, GEPInst,
                           ICmpInst, Instruction, LoadInst, PhiInst, RetInst,
                           SelectInst, StoreInst, TerminatorInst,
                           UnreachableInst, INTRINSICS, OPCODE_INFO)
from .module import Module
from .parser import ParseError, parse_function, parse_module
from .printer import (format_instruction, print_block, print_function,
                      print_module)
from .values import Argument, GlobalVariable, Use, User, Value
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "types",
    "BasicBlock", "IRBuilder", "Function", "Module",
    "Value", "User", "Use", "Argument", "GlobalVariable",
    "Constant", "ConstantInt", "ConstantFloat", "Undef", "const",
    "bool_const", "TRUE", "FALSE",
    "Instruction", "TerminatorInst", "BinaryInst", "ICmpInst", "FCmpInst",
    "SelectInst", "PhiInst", "CastInst", "LoadInst", "StoreInst", "GEPInst",
    "AllocaInst", "CallInst", "BranchInst", "CondBranchInst", "RetInst",
    "UnreachableInst", "INTRINSICS", "OPCODE_INFO",
    "clone_blocks", "clone_instruction", "map_value",
    "verify_function", "verify_module", "VerificationError",
    "print_function", "print_module", "print_block", "format_instruction",
    "parse_module", "parse_function", "ParseError",
]
