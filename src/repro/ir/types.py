"""Type system for the repro IR.

The type system mirrors the subset of LLVM types that GPU kernels in the
paper's benchmarks need: fixed-width integers, IEEE floats, pointers into a
flat address space, void, and function types.  Types are interned so they can
be compared with ``is`` and used as dictionary keys cheaply.
"""

from __future__ import annotations

from typing import Dict, Tuple


class Type:
    """Base class for all IR types."""

    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return id(self)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_bool(self) -> bool:
        return isinstance(self, IntType) and self.bits == 1

    def size_bytes(self) -> int:
        """Size of a value of this type in the simulated address space."""
        raise NotImplementedError(f"{self!r} has no size")


class VoidType(Type):
    def __repr__(self) -> str:
        return "void"


class IntType(Type):
    """Fixed-width two's-complement integer type (``i1``, ``i8``, ... )."""

    _cache: Dict[int, "IntType"] = {}

    def __new__(cls, bits: int) -> "IntType":
        cached = cls._cache.get(bits)
        if cached is not None:
            return cached
        if bits <= 0 or bits > 64:
            raise ValueError(f"unsupported integer width: {bits}")
        obj = super().__new__(cls)
        obj.bits = bits
        cls._cache[bits] = obj
        return obj

    bits: int

    def __repr__(self) -> str:
        return f"i{self.bits}"

    def size_bytes(self) -> int:
        return max(1, self.bits // 8)

    @property
    def min_signed(self) -> int:
        return -(1 << (self.bits - 1)) if self.bits > 1 else 0

    @property
    def max_signed(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.bits > 1 else 1

    @property
    def max_unsigned(self) -> int:
        return (1 << self.bits) - 1

    def wrap(self, value: int) -> int:
        """Wrap ``value`` to this width, interpreted as signed."""
        mask = (1 << self.bits) - 1
        value &= mask
        if self.bits > 1 and value >= (1 << (self.bits - 1)):
            value -= 1 << self.bits
        return value

    def to_unsigned(self, value: int) -> int:
        return value & ((1 << self.bits) - 1)


class FloatType(Type):
    """IEEE floating point type (``f32`` or ``f64``)."""

    _cache: Dict[int, "FloatType"] = {}

    def __new__(cls, bits: int) -> "FloatType":
        cached = cls._cache.get(bits)
        if cached is not None:
            return cached
        if bits not in (32, 64):
            raise ValueError(f"unsupported float width: {bits}")
        obj = super().__new__(cls)
        obj.bits = bits
        cls._cache[bits] = obj
        return obj

    bits: int

    def __repr__(self) -> str:
        return f"f{self.bits}"

    def size_bytes(self) -> int:
        return self.bits // 8


class PointerType(Type):
    """Pointer to values of ``pointee`` type in the flat address space."""

    _cache: Dict[Type, "PointerType"] = {}

    def __new__(cls, pointee: Type) -> "PointerType":
        cached = cls._cache.get(pointee)
        if cached is not None:
            return cached
        obj = super().__new__(cls)
        obj.pointee = pointee
        cls._cache[pointee] = obj
        return obj

    pointee: Type

    def __repr__(self) -> str:
        return f"{self.pointee!r}*"

    def size_bytes(self) -> int:
        return 8


class FunctionType(Type):
    """Function signature type."""

    _cache: Dict[Tuple[Type, Tuple[Type, ...]], "FunctionType"] = {}

    def __new__(cls, ret: Type, params: Tuple[Type, ...]) -> "FunctionType":
        params = tuple(params)
        key = (ret, params)
        cached = cls._cache.get(key)
        if cached is not None:
            return cached
        obj = super().__new__(cls)
        obj.ret = ret
        obj.params = params
        cls._cache[key] = obj
        return obj

    ret: Type
    params: Tuple[Type, ...]

    def __repr__(self) -> str:
        args = ", ".join(repr(p) for p in self.params)
        return f"{self.ret!r} ({args})"


VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)


def pointer(pointee: Type) -> PointerType:
    """Convenience constructor for pointer types."""
    return PointerType(pointee)


_NAMED: Dict[str, Type] = {
    "void": VOID,
    "i1": I1,
    "i8": I8,
    "i16": I16,
    "i32": I32,
    "i64": I64,
    "f32": F32,
    "f64": F64,
    # LLVM-flavoured aliases accepted by the parser.
    "float": F32,
    "double": F64,
}


def parse_type(text: str) -> Type:
    """Parse a type from its textual spelling (e.g. ``"i32"``, ``"f64*"``)."""
    text = text.strip()
    stars = 0
    while text.endswith("*"):
        stars += 1
        text = text[:-1].strip()
    base = _NAMED.get(text)
    if base is None:
        raise ValueError(f"unknown type: {text!r}")
    for _ in range(stars):
        base = PointerType(base)
    return base
