"""Region cloning with value remapping.

Both loop unrolling and control-flow unmerging work by cloning a set of
blocks and rewiring edges.  :func:`clone_blocks` copies a region, remapping
every operand through a value map; values defined outside the region keep
flowing in unchanged (standard LLVM ``CloneBasicBlock`` + ``remapInstruction``
behaviour).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .block import BasicBlock
from .function import Function
from .instructions import (AllocaInst, BinaryInst, BranchInst, CallInst,
                           CastInst, CondBranchInst, FCmpInst, GEPInst,
                           ICmpInst, Instruction, LoadInst, PhiInst, RetInst,
                           SelectInst, StoreInst, UnreachableInst)
from .values import Value

ValueMap = Dict[int, Value]


def map_value(vmap: ValueMap, value: Value) -> Value:
    """Look up ``value`` in the map, defaulting to itself (external values)."""
    return vmap.get(id(value), value)


def clone_instruction(inst: Instruction, vmap: ValueMap) -> Instruction:
    """Clone one instruction, remapping operands through ``vmap``.

    Phi nodes are cloned with their incoming values/blocks remapped; callers
    that change the predecessor structure must fix them up afterwards.
    Branch targets are remapped through ``vmap`` as well (blocks are values).
    """
    get = lambda v: map_value(vmap, v)

    if isinstance(inst, BinaryInst):
        new = BinaryInst(inst.opcode, get(inst.lhs), get(inst.rhs))
    elif isinstance(inst, ICmpInst):
        new = ICmpInst(inst.predicate, get(inst.lhs), get(inst.rhs))
    elif isinstance(inst, FCmpInst):
        new = FCmpInst(inst.predicate, get(inst.lhs), get(inst.rhs))
    elif isinstance(inst, SelectInst):
        new = SelectInst(get(inst.condition), get(inst.true_value),
                         get(inst.false_value))
    elif isinstance(inst, CastInst):
        new = CastInst(inst.opcode, get(inst.value), inst.type)
    elif isinstance(inst, PhiInst):
        new = PhiInst(inst.type)
        for value, block in inst.incoming():
            new.add_incoming(get(value), map_value(vmap, block))  # type: ignore[arg-type]
    elif isinstance(inst, LoadInst):
        new = LoadInst(get(inst.pointer))
    elif isinstance(inst, StoreInst):
        new = StoreInst(get(inst.value), get(inst.pointer))
    elif isinstance(inst, GEPInst):
        new = GEPInst(get(inst.pointer), get(inst.index))
    elif isinstance(inst, AllocaInst):
        new = AllocaInst(inst.element_type, inst.count)
    elif isinstance(inst, CallInst):
        new = CallInst(inst.intrinsic.name, [get(a) for a in inst.operands],
                       inst.type)
    elif isinstance(inst, BranchInst):
        new = BranchInst(map_value(vmap, inst.target))  # type: ignore[arg-type]
    elif isinstance(inst, CondBranchInst):
        new = CondBranchInst(get(inst.condition),
                             map_value(vmap, inst.true_target),   # type: ignore[arg-type]
                             map_value(vmap, inst.false_target))  # type: ignore[arg-type]
    elif isinstance(inst, RetInst):
        new = RetInst(get(inst.value) if inst.value is not None else None)
    elif isinstance(inst, UnreachableInst):
        new = UnreachableInst()
    else:
        raise NotImplementedError(f"cannot clone {inst!r}")
    new.name = inst.name
    return new


def clone_blocks(func: Function, blocks: List[BasicBlock], suffix: str,
                 vmap: Optional[ValueMap] = None) -> Tuple[List[BasicBlock], ValueMap]:
    """Clone ``blocks`` into ``func``, returning the clones and the value map.

    The clones are appended to the function.  Edges and operands that point
    inside the region are redirected to the clones; everything else keeps
    pointing at the original values.  The returned ``vmap`` maps
    ``id(original) -> clone`` for both blocks and instructions.
    """
    if vmap is None:
        vmap = {}

    clones: List[BasicBlock] = []
    for block in blocks:
        clone = func.add_block(f"{block.name}.{suffix}")
        vmap[id(block)] = clone
        clones.append(clone)

    # Two passes: create instructions (so forward refs within the region can
    # be remapped), then patch any operand that was defined later in the
    # region.  Phis are the only place forward references occur; handle them
    # by creating all clones first and remapping afterwards.
    pending: List[Tuple[Instruction, Instruction]] = []
    for block, clone in zip(blocks, clones):
        for inst in block.instructions:
            new_inst = clone_instruction(inst, vmap)
            if new_inst.name:
                new_inst.name = func.unique_name(new_inst.name)
            vmap[id(inst)] = new_inst
            clone.append(new_inst)
            pending.append((inst, new_inst))

    # Fix operands that referenced region values cloned *after* their user
    # (back-edges through phis, and any block-target forward references).
    for original, new_inst in pending:
        for i, op in enumerate(new_inst.operands):
            mapped = vmap.get(id(op))
            if mapped is not None and mapped is not op:
                new_inst.set_operand(i, mapped)
        if isinstance(new_inst, PhiInst):
            for i, blk in enumerate(new_inst.incoming_blocks):
                mapped_blk = vmap.get(id(blk))
                if mapped_blk is not None and mapped_blk is not blk:
                    new_inst.set_incoming_block(i, mapped_blk)  # type: ignore[arg-type]
        if isinstance(new_inst, BranchInst):
            mapped_blk = vmap.get(id(new_inst.target))
            if mapped_blk is not None and mapped_blk is not new_inst.target:
                new_inst.replace_successor(new_inst.target, mapped_blk)  # type: ignore[arg-type]
        if isinstance(new_inst, CondBranchInst):
            # replace_successor rewires every matching slot at once, so
            # deduplicate targets before iterating.
            unique_targets = {id(t): t for t in
                              (new_inst.true_target, new_inst.false_target)}
            for tgt in unique_targets.values():
                mapped_blk = vmap.get(id(tgt))
                if mapped_blk is not None and mapped_blk is not tgt:
                    new_inst.replace_successor(tgt, mapped_blk)  # type: ignore[arg-type]

    return clones, vmap
