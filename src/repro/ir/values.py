"""Core value classes and def-use tracking.

Every SSA value in the IR derives from :class:`Value`.  Instructions keep
their operands through :class:`Use` edges so that both directions of the
def-use graph are cheap to traverse: a value knows all its uses and a user
knows all its operands.  ``replace_all_uses_with`` is the workhorse for the
rewriting passes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from .types import Type

if TYPE_CHECKING:
    from .instructions import Instruction


class Use:
    """A single operand slot: ``user.operands[index] is value``."""

    __slots__ = ("user", "index")

    def __init__(self, user: "User", index: int) -> None:
        self.user = user
        self.index = index

    @property
    def value(self) -> "Value":
        return self.user.operands[self.index]

    def set(self, new_value: "Value") -> None:
        self.user.set_operand(self.index, new_value)

    def __repr__(self) -> str:
        return f"<Use {self.user!r}[{self.index}]>"


class Value:
    """Base class for anything that can be used as an operand."""

    __slots__ = ("type", "name", "uses")

    def __init__(self, type_: Type, name: str = "") -> None:
        self.type = type_
        self.name = name
        self.uses: List[Use] = []

    def add_use(self, use: Use) -> None:
        self.uses.append(use)

    def remove_use(self, use: Use) -> None:
        # Identity removal: a user may hold the same value in several slots.
        for i, u in enumerate(self.uses):
            if u is use:
                del self.uses[i]
                return
        raise ValueError(f"use {use!r} not registered on {self!r}")

    def users(self) -> Iterator["User"]:
        """Iterate over distinct users of this value."""
        seen = set()
        for use in list(self.uses):
            if id(use.user) not in seen:
                seen.add(id(use.user))
                yield use.user

    @property
    def num_uses(self) -> int:
        return len(self.uses)

    @property
    def is_used(self) -> bool:
        return bool(self.uses)

    def replace_all_uses_with(self, new_value: "Value") -> None:
        """Rewrite every use of ``self`` to refer to ``new_value``."""
        if new_value is self:
            return
        for use in list(self.uses):
            use.set(new_value)

    def short_name(self) -> str:
        return f"%{self.name}" if self.name else f"%<{id(self):x}>"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.short_name()}: {self.type!r}>"


class User(Value):
    """A value that holds operands (instructions, mostly)."""

    __slots__ = ("operands", "_operand_uses")

    def __init__(self, type_: Type, operands: List[Value], name: str = "") -> None:
        super().__init__(type_, name)
        self.operands: List[Value] = []
        self._operand_uses: List[Use] = []
        for op in operands:
            self.append_operand(op)

    def append_operand(self, value: Value) -> None:
        index = len(self.operands)
        self.operands.append(value)
        use = Use(self, index)
        self._operand_uses.append(use)
        value.add_use(use)

    def set_operand(self, index: int, value: Value) -> None:
        old = self.operands[index]
        if old is value:
            return
        old.remove_use(self._operand_uses[index])
        self.operands[index] = value
        value.add_use(self._operand_uses[index])

    def remove_operand(self, index: int) -> None:
        """Remove one operand slot, shifting later slots down."""
        self.operands[index].remove_use(self._operand_uses[index])
        del self.operands[index]
        del self._operand_uses[index]
        for i in range(index, len(self._operand_uses)):
            self._operand_uses[i].index = i

    def drop_all_operands(self) -> None:
        for i in reversed(range(len(self.operands))):
            self.remove_operand(i)


class Argument(Value):
    """A formal parameter of a function."""

    __slots__ = ("parent", "index")

    def __init__(self, type_: Type, name: str, index: int) -> None:
        super().__init__(type_, name)
        self.parent = None
        self.index = index

    def __repr__(self) -> str:
        return f"<Argument %{self.name}: {self.type!r}>"


class GlobalVariable(Value):
    """A module-level array/scalar living in the simulated global memory."""

    __slots__ = ("element_type", "count", "initializer")

    def __init__(self, element_type: Type, count: int, name: str,
                 initializer=None) -> None:
        from .types import PointerType

        super().__init__(PointerType(element_type), name)
        self.element_type = element_type
        self.count = count
        self.initializer = initializer

    def short_name(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        return f"<GlobalVariable @{self.name}: {self.element_type!r} x {self.count}>"
