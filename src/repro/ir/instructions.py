"""Instruction set of the repro IR.

The instruction set mirrors the LLVM subset exercised by the paper's GPU
benchmarks: integer/float arithmetic, comparisons, ``select`` (the IR-level
ancestor of PTX ``selp``), ``phi``, branches, memory operations and a handful
of GPU/math intrinsics.  Each opcode carries static metadata (purity,
commutativity, counter category, issue cost) that the optimization passes,
the cost model and the SIMT simulator all share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from .constants import Constant
from .types import (F32, F64, I1, I64, FloatType, IntType, PointerType, Type,
                    VOID)
from .values import User, Value

if TYPE_CHECKING:
    from .block import BasicBlock


# ---------------------------------------------------------------------------
# Opcode metadata
# ---------------------------------------------------------------------------

#: Counter categories used by the GPU simulator, mirroring nvprof counters:
#: ``misc`` feeds inst_misc (selp/mov-like data movement), ``control`` feeds
#: inst_control, the rest feed the per-class execution counters.
CATEGORY_INT = "int"
CATEGORY_FP = "fp"
CATEGORY_MISC = "misc"
CATEGORY_CONTROL = "control"
CATEGORY_LOAD = "load"
CATEGORY_STORE = "store"
CATEGORY_SPECIAL = "special"


@dataclass(frozen=True)
class OpInfo:
    """Static properties of an opcode."""

    category: str
    pure: bool          # No side effects and result depends only on operands.
    commutative: bool = False
    may_trap: bool = False  # Division-like ops; kept out of speculative motion.
    cost: int = 1       # Abstract size/issue cost (LLVM-cost-model-flavoured).


INT_BINOPS = ("add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
              "shl", "lshr", "ashr", "and", "or", "xor")
FLOAT_BINOPS = ("fadd", "fsub", "fmul", "fdiv", "frem")
CAST_OPS = ("trunc", "zext", "sext", "sitofp", "uitofp", "fptosi", "fpext",
            "fptrunc", "bitcast", "ptrtoint", "inttoptr")

OPCODE_INFO: Dict[str, OpInfo] = {
    # Integer arithmetic.
    "add": OpInfo(CATEGORY_INT, True, commutative=True),
    "sub": OpInfo(CATEGORY_INT, True),
    "mul": OpInfo(CATEGORY_INT, True, commutative=True, cost=2),
    "sdiv": OpInfo(CATEGORY_INT, True, may_trap=True, cost=8),
    "udiv": OpInfo(CATEGORY_INT, True, may_trap=True, cost=8),
    "srem": OpInfo(CATEGORY_INT, True, may_trap=True, cost=8),
    "urem": OpInfo(CATEGORY_INT, True, may_trap=True, cost=8),
    "shl": OpInfo(CATEGORY_INT, True),
    "lshr": OpInfo(CATEGORY_INT, True),
    "ashr": OpInfo(CATEGORY_INT, True),
    "and": OpInfo(CATEGORY_INT, True, commutative=True),
    "or": OpInfo(CATEGORY_INT, True, commutative=True),
    "xor": OpInfo(CATEGORY_INT, True, commutative=True),
    # Float arithmetic.
    "fadd": OpInfo(CATEGORY_FP, True, commutative=True, cost=2),
    "fsub": OpInfo(CATEGORY_FP, True, cost=2),
    "fmul": OpInfo(CATEGORY_FP, True, commutative=True, cost=2),
    "fdiv": OpInfo(CATEGORY_FP, True, may_trap=False, cost=10),
    "frem": OpInfo(CATEGORY_FP, True, may_trap=False, cost=12),
    # Comparisons.
    "icmp": OpInfo(CATEGORY_INT, True),
    "fcmp": OpInfo(CATEGORY_FP, True, cost=2),
    # Data movement (PTX selp / mov analogues).
    "select": OpInfo(CATEGORY_MISC, True),
    "phi": OpInfo(CATEGORY_MISC, True, cost=1),
    # Casts.
    "trunc": OpInfo(CATEGORY_INT, True),
    "zext": OpInfo(CATEGORY_INT, True),
    "sext": OpInfo(CATEGORY_INT, True),
    "sitofp": OpInfo(CATEGORY_FP, True, cost=2),
    "uitofp": OpInfo(CATEGORY_FP, True, cost=2),
    "fptosi": OpInfo(CATEGORY_FP, True, cost=2),
    "fpext": OpInfo(CATEGORY_FP, True),
    "fptrunc": OpInfo(CATEGORY_FP, True),
    "bitcast": OpInfo(CATEGORY_MISC, True, cost=0),
    "ptrtoint": OpInfo(CATEGORY_MISC, True, cost=0),
    "inttoptr": OpInfo(CATEGORY_MISC, True, cost=0),
    # Memory.
    "load": OpInfo(CATEGORY_LOAD, False, cost=4),
    "store": OpInfo(CATEGORY_STORE, False, cost=4),
    "gep": OpInfo(CATEGORY_INT, True),
    "alloca": OpInfo(CATEGORY_SPECIAL, False, cost=0),
    # Control flow.
    "br": OpInfo(CATEGORY_CONTROL, False),
    "condbr": OpInfo(CATEGORY_CONTROL, False),
    "ret": OpInfo(CATEGORY_CONTROL, False),
    "unreachable": OpInfo(CATEGORY_CONTROL, False, cost=0),
    # Calls (intrinsics only in this IR).
    "call": OpInfo(CATEGORY_SPECIAL, False, cost=4),
}

#: Signed/unsigned/equality integer comparison predicates (LLVM spelling).
ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge",
                   "ult", "ule", "ugt", "uge")
#: Ordered float predicates; ``leu``-style unordered forms appear in the
#: paper's PTX but map onto these at IR level.
FCMP_PREDICATES = ("oeq", "one", "olt", "ole", "ogt", "oge",
                   "ueq", "une", "ult", "ule", "ugt", "uge")

ICMP_SWAPPED = {"eq": "eq", "ne": "ne", "slt": "sgt", "sgt": "slt",
                "sle": "sge", "sge": "sle", "ult": "ugt", "ugt": "ult",
                "ule": "uge", "uge": "ule"}
ICMP_NEGATED = {"eq": "ne", "ne": "eq", "slt": "sge", "sge": "slt",
                "sgt": "sle", "sle": "sgt", "ult": "uge", "uge": "ult",
                "ugt": "ule", "ule": "ugt"}
FCMP_NEGATED = {"oeq": "une", "one": "ueq", "olt": "uge", "ole": "ugt",
                "ogt": "ule", "oge": "ult", "ueq": "one", "une": "oeq",
                "ult": "oge", "ule": "ogt", "ugt": "ole", "uge": "olt"}


# ---------------------------------------------------------------------------
# Intrinsics
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class IntrinsicInfo:
    """Description of a callable intrinsic."""

    name: str
    pure: bool
    convergent: bool = False
    category: str = CATEGORY_SPECIAL
    cost: int = 4


INTRINSICS: Dict[str, IntrinsicInfo] = {
    # SIMT geometry — pure within a launch but lane-dependent.
    "tid.x": IntrinsicInfo("tid.x", True, category=CATEGORY_SPECIAL, cost=1),
    "ctaid.x": IntrinsicInfo("ctaid.x", True, category=CATEGORY_SPECIAL, cost=1),
    "ntid.x": IntrinsicInfo("ntid.x", True, category=CATEGORY_SPECIAL, cost=1),
    "nctaid.x": IntrinsicInfo("nctaid.x", True, category=CATEGORY_SPECIAL, cost=1),
    # Convergent barrier: blocks u&u per paper Section III-C.
    "syncthreads": IntrinsicInfo("syncthreads", False, convergent=True,
                                 category=CATEGORY_CONTROL, cost=8),
    # Math intrinsics (SFU-flavoured costs).
    "sqrt": IntrinsicInfo("sqrt", True, category=CATEGORY_FP, cost=8),
    "fabs": IntrinsicInfo("fabs", True, category=CATEGORY_FP, cost=1),
    "exp": IntrinsicInfo("exp", True, category=CATEGORY_FP, cost=12),
    "log": IntrinsicInfo("log", True, category=CATEGORY_FP, cost=12),
    "sin": IntrinsicInfo("sin", True, category=CATEGORY_FP, cost=12),
    "cos": IntrinsicInfo("cos", True, category=CATEGORY_FP, cost=12),
    "pow": IntrinsicInfo("pow", True, category=CATEGORY_FP, cost=16),
    "fma": IntrinsicInfo("fma", True, category=CATEGORY_FP, cost=2),
    "min": IntrinsicInfo("min", True, category=CATEGORY_INT, cost=1),
    "max": IntrinsicInfo("max", True, category=CATEGORY_INT, cost=1),
    "fmin": IntrinsicInfo("fmin", True, category=CATEGORY_FP, cost=1),
    "fmax": IntrinsicInfo("fmax", True, category=CATEGORY_FP, cost=1),
    "atan": IntrinsicInfo("atan", True, category=CATEGORY_FP, cost=14),
    "floor": IntrinsicInfo("floor", True, category=CATEGORY_FP, cost=2),
}


# ---------------------------------------------------------------------------
# Instruction base
# ---------------------------------------------------------------------------

class Instruction(User):
    """Base class for all instructions."""

    __slots__ = ("opcode", "parent")

    def __init__(self, opcode: str, type_: Type, operands: Sequence[Value],
                 name: str = "") -> None:
        if opcode not in OPCODE_INFO:
            raise ValueError(f"unknown opcode: {opcode}")
        super().__init__(type_, list(operands), name)
        self.opcode = opcode
        self.parent: Optional["BasicBlock"] = None

    # -- metadata ----------------------------------------------------------
    @property
    def info(self) -> OpInfo:
        return OPCODE_INFO[self.opcode]

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, TerminatorInst)

    @property
    def is_pure(self) -> bool:
        """True if the instruction can be removed when unused / deduplicated."""
        if isinstance(self, CallInst):
            return self.intrinsic.pure
        return self.info.pure

    @property
    def is_convergent(self) -> bool:
        return isinstance(self, CallInst) and self.intrinsic.convergent

    @property
    def may_have_side_effects(self) -> bool:
        return not self.is_pure and not self.is_terminator

    @property
    def category(self) -> str:
        if isinstance(self, CallInst):
            return self.intrinsic.category
        return self.info.category

    @property
    def cost(self) -> int:
        if isinstance(self, CallInst):
            return self.intrinsic.cost
        return self.info.cost

    # -- manipulation --------------------------------------------------------
    def erase_from_parent(self) -> None:
        """Unlink from the containing block and drop operand uses."""
        if self.parent is not None:
            self.parent.remove_instruction(self)
        self.drop_all_operands()

    def value_key(self) -> Optional[Tuple]:
        """Hashable key identifying this computation for value numbering.

        Returns ``None`` for instructions that must not be deduplicated
        (impure ops, phis, terminators).  Commutative operands are
        canonicalised by id order so ``a+b`` and ``b+a`` number identically.
        """
        if not self.is_pure or isinstance(self, PhiInst):
            return None
        ops = tuple(id(op) for op in self.operands)
        extra: Tuple = ()
        if isinstance(self, (ICmpInst, FCmpInst)):
            extra = (self.predicate,)
        elif isinstance(self, CastInst):
            extra = (self.type,)
        elif isinstance(self, CallInst):
            extra = (self.intrinsic.name,)
        elif isinstance(self, GEPInst):
            extra = (self.type,)
        if self.info.commutative and len(ops) == 2 and ops[0] > ops[1]:
            ops = (ops[1], ops[0])
        return (self.opcode, extra, ops)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.opcode} {self.short_name()}>"


class TerminatorInst(Instruction):
    """Instructions that end a basic block."""

    __slots__ = ()

    def successors(self) -> List["BasicBlock"]:
        return []

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        raise ValueError(f"{self!r} has no successors")


# ---------------------------------------------------------------------------
# Concrete instructions
# ---------------------------------------------------------------------------

class BinaryInst(Instruction):
    """Two-operand arithmetic/bitwise instruction."""

    __slots__ = ()

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if lhs.type is not rhs.type:
            raise TypeError(
                f"{opcode}: operand types differ ({lhs.type!r} vs {rhs.type!r})")
        if opcode in INT_BINOPS and not isinstance(lhs.type, IntType):
            raise TypeError(f"{opcode} requires integer operands, got {lhs.type!r}")
        if opcode in FLOAT_BINOPS and not isinstance(lhs.type, FloatType):
            raise TypeError(f"{opcode} requires float operands, got {lhs.type!r}")
        super().__init__(opcode, lhs.type, [lhs, rhs], name)

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class ICmpInst(Instruction):
    """Integer (or pointer) comparison producing an ``i1``."""

    __slots__ = ("predicate",)

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"bad icmp predicate: {predicate}")
        if lhs.type is not rhs.type:
            raise TypeError(
                f"icmp: operand types differ ({lhs.type!r} vs {rhs.type!r})")
        super().__init__("icmp", I1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def negated_predicate(self) -> str:
        return ICMP_NEGATED[self.predicate]


class FCmpInst(Instruction):
    """Floating point comparison producing an ``i1``."""

    __slots__ = ("predicate",)

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if predicate not in FCMP_PREDICATES:
            raise ValueError(f"bad fcmp predicate: {predicate}")
        if lhs.type is not rhs.type:
            raise TypeError(
                f"fcmp: operand types differ ({lhs.type!r} vs {rhs.type!r})")
        super().__init__("fcmp", I1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def negated_predicate(self) -> str:
        return FCMP_NEGATED[self.predicate]


class SelectInst(Instruction):
    """``select cond, tval, fval`` — the IR form PTX lowers to ``selp``."""

    __slots__ = ()

    def __init__(self, cond: Value, tval: Value, fval: Value, name: str = "") -> None:
        if cond.type is not I1:
            raise TypeError("select condition must be i1")
        if tval.type is not fval.type:
            raise TypeError("select arms must have identical types")
        super().__init__("select", tval.type, [cond, tval, fval], name)

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def true_value(self) -> Value:
        return self.operands[1]

    @property
    def false_value(self) -> Value:
        return self.operands[2]


class CastInst(Instruction):
    """Type conversion instruction."""

    __slots__ = ()

    def __init__(self, opcode: str, value: Value, to_type: Type, name: str = "") -> None:
        if opcode not in CAST_OPS:
            raise ValueError(f"bad cast opcode: {opcode}")
        super().__init__(opcode, to_type, [value], name)

    @property
    def value(self) -> Value:
        return self.operands[0]


class PhiInst(Instruction):
    """SSA phi node.

    Incoming values live in ``operands``; ``incoming_blocks[i]`` is the
    predecessor block for ``operands[i]``.
    """

    __slots__ = ("incoming_blocks",)

    def __init__(self, type_: Type, name: str = "") -> None:
        super().__init__("phi", type_, [], name)
        self.incoming_blocks: List["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type is not self.type:
            raise TypeError(
                f"phi incoming type {value.type!r} != phi type {self.type!r}")
        self.append_operand(value)
        self.incoming_blocks.append(block)

    def incoming_for(self, block: "BasicBlock") -> Value:
        for value, pred in zip(self.operands, self.incoming_blocks):
            if pred is block:
                return value
        raise KeyError(f"phi has no incoming value for block {block.name}")

    def has_incoming_for(self, block: "BasicBlock") -> bool:
        return any(pred is block for pred in self.incoming_blocks)

    def set_incoming_block(self, index: int, block: "BasicBlock") -> None:
        self.incoming_blocks[index] = block

    def remove_incoming(self, block: "BasicBlock") -> None:
        """Remove every incoming entry whose predecessor is ``block``."""
        for i in reversed(range(len(self.incoming_blocks))):
            if self.incoming_blocks[i] is block:
                self.remove_operand(i)
                del self.incoming_blocks[i]

    def incoming(self) -> List[Tuple[Value, "BasicBlock"]]:
        return list(zip(self.operands, self.incoming_blocks))

    def is_trivial(self) -> Optional[Value]:
        """If all incoming values are the same (or self), return that value."""
        unique: Optional[Value] = None
        for value in self.operands:
            if value is self:
                continue
            if unique is None:
                unique = value
            elif value is not unique:
                return None
        return unique


class LoadInst(Instruction):
    """Load from a pointer."""

    __slots__ = ()

    def __init__(self, ptr: Value, name: str = "") -> None:
        if not isinstance(ptr.type, PointerType):
            raise TypeError(f"load requires a pointer operand, got {ptr.type!r}")
        super().__init__("load", ptr.type.pointee, [ptr], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class StoreInst(Instruction):
    """Store a value through a pointer."""

    __slots__ = ()

    def __init__(self, value: Value, ptr: Value) -> None:
        if not isinstance(ptr.type, PointerType):
            raise TypeError(f"store requires a pointer operand, got {ptr.type!r}")
        if ptr.type.pointee is not value.type:
            raise TypeError(
                f"store type mismatch: {value.type!r} into {ptr.type!r}")
        super().__init__("store", VOID, [value, ptr])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class GEPInst(Instruction):
    """``gep ptr, index`` — pointer arithmetic scaled by the element size."""

    __slots__ = ()

    def __init__(self, ptr: Value, index: Value, name: str = "") -> None:
        if not isinstance(ptr.type, PointerType):
            raise TypeError(f"gep requires a pointer base, got {ptr.type!r}")
        if not isinstance(index.type, IntType):
            raise TypeError(f"gep index must be an integer, got {index.type!r}")
        super().__init__("gep", ptr.type, [ptr, index], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]

    @property
    def element_type(self) -> Type:
        return self.type.pointee  # type: ignore[attr-defined]


class AllocaInst(Instruction):
    """Stack (per-thread local) allocation of ``count`` elements."""

    __slots__ = ("element_type", "count")

    def __init__(self, element_type: Type, count: int = 1, name: str = "") -> None:
        super().__init__("alloca", PointerType(element_type), [], name)
        self.element_type = element_type
        self.count = count


class CallInst(Instruction):
    """Call of a named intrinsic."""

    __slots__ = ("intrinsic",)

    def __init__(self, intrinsic: str, args: Sequence[Value],
                 type_: Optional[Type] = None, name: str = "") -> None:
        info = INTRINSICS.get(intrinsic)
        if info is None:
            raise ValueError(f"unknown intrinsic: {intrinsic}")
        if type_ is None:
            type_ = _default_intrinsic_type(intrinsic, args)
        super().__init__("call", type_, list(args), name)
        self.intrinsic = info

    @property
    def args(self) -> List[Value]:
        return list(self.operands)


def _default_intrinsic_type(name: str, args: Sequence[Value]) -> Type:
    if name in ("tid.x", "ctaid.x", "ntid.x", "nctaid.x"):
        return I64
    if name == "syncthreads":
        return VOID
    if args:
        return args[0].type
    return F64


class BranchInst(TerminatorInst):
    """Unconditional branch."""

    __slots__ = ("_target",)

    def __init__(self, target: "BasicBlock") -> None:
        super().__init__("br", VOID, [])
        self._target = target

    @property
    def target(self) -> "BasicBlock":
        return self._target

    def successors(self) -> List["BasicBlock"]:
        return [self._target]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self._target is old:
            self._target = new
        else:
            raise ValueError(f"{old.name} is not a successor")


class CondBranchInst(TerminatorInst):
    """Two-way conditional branch."""

    __slots__ = ("_true_target", "_false_target")

    def __init__(self, cond: Value, true_target: "BasicBlock",
                 false_target: "BasicBlock") -> None:
        if cond.type is not I1:
            raise TypeError("condbr condition must be i1")
        super().__init__("condbr", VOID, [cond])
        self._true_target = true_target
        self._false_target = false_target

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def true_target(self) -> "BasicBlock":
        return self._true_target

    @property
    def false_target(self) -> "BasicBlock":
        return self._false_target

    def successors(self) -> List["BasicBlock"]:
        return [self._true_target, self._false_target]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        replaced = False
        if self._true_target is old:
            self._true_target = new
            replaced = True
        if self._false_target is old:
            self._false_target = new
            replaced = True
        if not replaced:
            raise ValueError(f"{old.name} is not a successor")


class RetInst(TerminatorInst):
    """Function return (with optional value)."""

    __slots__ = ()

    def __init__(self, value: Optional[Value] = None) -> None:
        operands = [value] if value is not None else []
        super().__init__("ret", VOID, operands)

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None


class UnreachableInst(TerminatorInst):
    """Marks statically unreachable control flow."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("unreachable", VOID, [])
