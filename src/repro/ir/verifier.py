"""IR verifier.

Checks the structural invariants every pass must preserve:

* each reachable block ends in exactly one terminator, placed last;
* phis sit at the top of their block and have exactly one incoming entry
  per predecessor (and none for non-predecessors);
* SSA dominance: every use of an instruction is dominated by its definition
  (uses in phis are checked at the end of the corresponding predecessor);
* def-use bookkeeping is consistent in both directions;
* types of stored values, branch conditions etc. line up (mostly enforced at
  construction, re-checked here for rewired IR);
* no shift by a constant amount >= the operand width: such shifts are
  undefined in the folder/interpreter contract (:mod:`repro.semantics`) —
  the folder refuses them while the interpreter would compute something,
  so letting one survive a pass would be a latent differential miscompile.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .block import BasicBlock
from .constants import Constant, ConstantInt
from .function import Function
from .instructions import (BinaryInst, CondBranchInst, Instruction, PhiInst,
                           TerminatorInst)
from .module import Module
from .values import Argument, GlobalVariable, Value

#: Opcodes whose constant right operand must stay below the operand width.
_SHIFT_OPS = ("shl", "lshr", "ashr")


class VerificationError(Exception):
    """Raised when the IR violates a structural invariant."""


def _fail(func: Function, message: str) -> None:
    raise VerificationError(f"@{func.name}: {message}")


def verify_function(func: Function) -> None:
    """Verify one function; raises :class:`VerificationError` on violation."""
    if not func.blocks:
        _fail(func, "function has no blocks")

    block_set = {id(b) for b in func.blocks}
    for block in func.blocks:
        if block.parent is not func:
            _fail(func, f"block {block.name} has wrong parent")
        _verify_block_structure(func, block, block_set)

    preds = _predecessor_map(func)
    _verify_phis(func, preds)
    _verify_def_use(func)
    _verify_dominance(func, preds)


def verify_module(module: Module) -> None:
    for func in module.functions.values():
        verify_function(func)


# ---------------------------------------------------------------------------
# Structure
# ---------------------------------------------------------------------------

def _verify_block_structure(func: Function, block: BasicBlock,
                            block_set: Set[int]) -> None:
    if not block.instructions:
        _fail(func, f"block {block.name} is empty")
    term = block.instructions[-1]
    if not isinstance(term, TerminatorInst):
        _fail(func, f"block {block.name} does not end in a terminator")
    seen_non_phi = False
    for inst in block.instructions[:-1]:
        if isinstance(inst, TerminatorInst):
            _fail(func, f"block {block.name} has a terminator mid-block")
        if isinstance(inst, PhiInst):
            if seen_non_phi:
                _fail(func, f"phi after non-phi in block {block.name}")
        else:
            seen_non_phi = True
    for inst in block.instructions:
        if inst.parent is not block:
            _fail(func, f"instruction {inst!r} has stale parent link")
        if isinstance(inst, BinaryInst) and inst.opcode in _SHIFT_OPS and \
                isinstance(inst.rhs, ConstantInt):
            width = inst.type.bits  # type: ignore[attr-defined]
            amount = inst.rhs.unsigned()
            if amount >= width:
                _fail(func,
                      f"%{inst.name} in {block.name}: constant over-shift "
                      f"({inst.opcode} of i{width} by {amount})")
    for succ in block.successors():
        if id(succ) not in block_set:
            _fail(func, f"block {block.name} branches to foreign block "
                        f"{succ.name}")
    if isinstance(term, CondBranchInst) and term.condition.type.is_bool is False:
        _fail(func, f"condbr condition in {block.name} is not i1")


def _predecessor_map(func: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    # Deduplicated per edge source: one phi incoming entry covers both edges
    # of a conditional branch with identical targets.
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in func.blocks}
    for block in func.blocks:
        seen: Set[int] = set()
        for succ in block.successors():
            if id(succ) not in seen:
                seen.add(id(succ))
                preds[succ].append(block)
    return preds


# ---------------------------------------------------------------------------
# Phis
# ---------------------------------------------------------------------------

def _verify_phis(func: Function,
                 preds: Dict[BasicBlock, List[BasicBlock]]) -> None:
    for block in func.blocks:
        pred_ids = [id(p) for p in preds[block]]
        for phi in block.phis():
            incoming_ids = [id(b) for b in phi.incoming_blocks]
            if sorted(incoming_ids) != sorted(pred_ids):
                pred_names = sorted(p.name for p in preds[block])
                inc_names = sorted(b.name for b in phi.incoming_blocks)
                _fail(func,
                      f"phi %{phi.name} in {block.name} incoming blocks "
                      f"{inc_names} do not match predecessors {pred_names}")
            for value in phi.operands:
                if value.type is not phi.type:
                    _fail(func, f"phi %{phi.name} incoming type mismatch")


# ---------------------------------------------------------------------------
# Def-use consistency
# ---------------------------------------------------------------------------

def _verify_def_use(func: Function) -> None:
    for block in func.blocks:
        for inst in block.instructions:
            for i, op in enumerate(inst.operands):
                use = inst._operand_uses[i]
                if use.user is not inst or use.index != i:
                    _fail(func, f"corrupt use record on {inst!r} slot {i}")
                if not any(u is use for u in op.uses):
                    _fail(func, f"operand {op!r} of {inst!r} lacks back-edge use")


# ---------------------------------------------------------------------------
# SSA dominance
# ---------------------------------------------------------------------------

def _verify_dominance(func: Function,
                      preds: Dict[BasicBlock, List[BasicBlock]]) -> None:
    # Local import: analysis package depends on ir, so import lazily here.
    from ..analysis.dominators import DominatorTree

    domtree = DominatorTree.compute(func)
    reachable = set(domtree.reachable_ids())

    positions: Dict[int, int] = {}
    for block in func.blocks:
        for i, inst in enumerate(block.instructions):
            positions[id(inst)] = i

    for block in func.blocks:
        if id(block) not in reachable:
            continue  # Unreachable code is exempt from dominance checks.
        for inst in block.instructions:
            for slot, op in enumerate(inst.operands):
                if not isinstance(op, Instruction):
                    continue
                def_block = op.parent
                if def_block is None:
                    _fail(func, f"operand {op!r} of {inst!r} is detached")
                if id(def_block) not in reachable:
                    _fail(func,
                          f"%{inst.name} in {block.name} uses %{op.name} "
                          f"defined in unreachable block {def_block.name}")
                if isinstance(inst, PhiInst):
                    pred = inst.incoming_blocks[slot]
                    if not domtree.dominates_block(def_block, pred):
                        _fail(func,
                              f"phi %{inst.name}: incoming %{op.name} does not "
                              f"dominate predecessor {pred.name}")
                else:
                    if def_block is block:
                        if positions[id(op)] >= positions[id(inst)]:
                            _fail(func,
                                  f"%{inst.name} uses %{op.name} before its "
                                  f"definition in {block.name}")
                    elif not domtree.dominates_block(def_block, block):
                        _fail(func,
                              f"%{inst.name} in {block.name} not dominated by "
                              f"definition of %{op.name} in {def_block.name}")
