"""Textual IR printer (LLVM-flavoured, round-trippable with the parser)."""

from __future__ import annotations

from typing import Dict, List, Optional

from .block import BasicBlock
from .constants import ConstantFloat, ConstantInt, Undef
from .function import Function
from .instructions import (AllocaInst, BinaryInst, BranchInst, CallInst,
                           CastInst, CondBranchInst, FCmpInst, GEPInst,
                           ICmpInst, Instruction, LoadInst, PhiInst, RetInst,
                           SelectInst, StoreInst, UnreachableInst)
from .module import Module
from .values import Argument, GlobalVariable, Value


def format_value(value: Value) -> str:
    """Format a value as an operand reference (with type prefix)."""
    return f"{value.type!r} {format_value_name(value)}"


def format_value_name(value: Value) -> str:
    if isinstance(value, ConstantInt):
        return str(value.value)
    if isinstance(value, ConstantFloat):
        return repr(value.value)
    if isinstance(value, Undef):
        return "undef"
    if isinstance(value, GlobalVariable):
        return f"@{value.name}"
    if isinstance(value, BasicBlock):
        return f"%{value.name}"
    return f"%{value.name}"


def format_instruction(inst: Instruction) -> str:
    """One-line textual form of an instruction."""
    name = f"%{inst.name} = " if not inst.type.is_void else ""
    if isinstance(inst, BinaryInst):
        return (f"{name}{inst.opcode} {inst.type!r} "
                f"{format_value_name(inst.lhs)}, {format_value_name(inst.rhs)}")
    if isinstance(inst, ICmpInst):
        return (f"{name}icmp {inst.predicate} {inst.lhs.type!r} "
                f"{format_value_name(inst.lhs)}, {format_value_name(inst.rhs)}")
    if isinstance(inst, FCmpInst):
        return (f"{name}fcmp {inst.predicate} {inst.lhs.type!r} "
                f"{format_value_name(inst.lhs)}, {format_value_name(inst.rhs)}")
    if isinstance(inst, SelectInst):
        return (f"{name}select {format_value(inst.condition)}, "
                f"{format_value(inst.true_value)}, {format_value(inst.false_value)}")
    if isinstance(inst, PhiInst):
        pairs = ", ".join(
            f"[ {format_value_name(v)}, %{b.name} ]" for v, b in inst.incoming())
        return f"{name}phi {inst.type!r} {pairs}"
    if isinstance(inst, CastInst):
        return (f"{name}{inst.opcode} {format_value(inst.value)} to {inst.type!r}")
    if isinstance(inst, LoadInst):
        return f"{name}load {inst.type!r}, {format_value(inst.pointer)}"
    if isinstance(inst, StoreInst):
        return f"store {format_value(inst.value)}, {format_value(inst.pointer)}"
    if isinstance(inst, GEPInst):
        return (f"{name}gep {format_value(inst.pointer)}, "
                f"{format_value(inst.index)}")
    if isinstance(inst, AllocaInst):
        return f"{name}alloca {inst.element_type!r}, {inst.count}"
    if isinstance(inst, CallInst):
        args = ", ".join(format_value(a) for a in inst.args)
        return f"{name}call {inst.type!r} @{inst.intrinsic.name}({args})"
    if isinstance(inst, BranchInst):
        return f"br label %{inst.target.name}"
    if isinstance(inst, CondBranchInst):
        return (f"br {format_value(inst.condition)}, label %{inst.true_target.name}, "
                f"label %{inst.false_target.name}")
    if isinstance(inst, RetInst):
        if inst.value is None:
            return "ret void"
        return f"ret {format_value(inst.value)}"
    if isinstance(inst, UnreachableInst):
        return "unreachable"
    raise NotImplementedError(f"cannot print {inst!r}")


def print_block(block: BasicBlock) -> str:
    preds = ", ".join(p.name for p in block.predecessors())
    header = f"{block.name}:"
    if preds:
        header += f"                ; preds: {preds}"
    lines = [header]
    for inst in block.instructions:
        lines.append(f"  {format_instruction(inst)}")
    return "\n".join(lines)


def print_function(func: Function) -> str:
    args = ", ".join(
        f"{a.type!r} %{a.name}" for a in func.args)
    lines = [f"define {func.ftype.ret!r} @{func.name}({args}) {{"]
    for block in func.blocks:
        lines.append(print_block(block))
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    lines: List[str] = [f"; module {module.name}"]
    for gv in module.globals.values():
        lines.append(f"@{gv.name} = global {gv.element_type!r} x {gv.count}")
    if module.globals:
        lines.append("")
    for func in module.functions.values():
        lines.append(print_function(func))
        lines.append("")
    return "\n".join(lines)


def ensure_names(func: Function) -> None:
    """Assign names to any unnamed instructions (printer precondition)."""
    for inst in func.instructions():
        if not inst.type.is_void and not inst.name:
            inst.name = func.unique_name("v")
