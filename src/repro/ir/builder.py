"""IRBuilder: convenience construction of instructions at an insert point."""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from .block import BasicBlock
from .constants import Constant, ConstantFloat, ConstantInt, const
from .instructions import (AllocaInst, BinaryInst, BranchInst, CallInst,
                           CastInst, CondBranchInst, FCmpInst, GEPInst,
                           ICmpInst, Instruction, LoadInst, PhiInst, RetInst,
                           SelectInst, StoreInst, UnreachableInst)
from .types import FloatType, IntType, PointerType, Type
from .values import Value

Operand = Union[Value, int, float]


class IRBuilder:
    """Builds instructions appended to the current block.

    Integer/float literals passed as operands are promoted to constants of
    the sibling operand's type, which keeps kernel-construction code terse.
    """

    def __init__(self, block: Optional[BasicBlock] = None) -> None:
        self.block = block

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    @property
    def function(self):
        if self.block is None or self.block.parent is None:
            raise ValueError("builder is not positioned inside a function")
        return self.block.parent

    # -- internals ----------------------------------------------------------
    def _insert(self, inst: Instruction, name: str) -> Instruction:
        if self.block is None:
            raise ValueError("builder has no insertion block")
        if name:
            inst.name = self.function.unique_name(name)
        elif not inst.type.is_void:
            inst.name = self.function.unique_name("v")
        self.block.append(inst)
        return inst

    def _coerce(self, value: Operand, like: Value) -> Value:
        if isinstance(value, Value):
            return value
        return const(like.type, value)

    def _coerce_pair(self, lhs: Operand, rhs: Operand):
        if isinstance(lhs, Value):
            return lhs, self._coerce(rhs, lhs)
        if isinstance(rhs, Value):
            return self._coerce(lhs, rhs), rhs
        raise TypeError("at least one operand must be an IR value")

    # -- arithmetic -----------------------------------------------------------
    def binary(self, opcode: str, lhs: Operand, rhs: Operand, name: str = "") -> Value:
        lhs, rhs = self._coerce_pair(lhs, rhs)
        return self._insert(BinaryInst(opcode, lhs, rhs), name)

    def add(self, lhs, rhs, name=""):
        return self.binary("add", lhs, rhs, name)

    def sub(self, lhs, rhs, name=""):
        return self.binary("sub", lhs, rhs, name)

    def mul(self, lhs, rhs, name=""):
        return self.binary("mul", lhs, rhs, name)

    def sdiv(self, lhs, rhs, name=""):
        return self.binary("sdiv", lhs, rhs, name)

    def udiv(self, lhs, rhs, name=""):
        return self.binary("udiv", lhs, rhs, name)

    def srem(self, lhs, rhs, name=""):
        return self.binary("srem", lhs, rhs, name)

    def urem(self, lhs, rhs, name=""):
        return self.binary("urem", lhs, rhs, name)

    def shl(self, lhs, rhs, name=""):
        return self.binary("shl", lhs, rhs, name)

    def lshr(self, lhs, rhs, name=""):
        return self.binary("lshr", lhs, rhs, name)

    def ashr(self, lhs, rhs, name=""):
        return self.binary("ashr", lhs, rhs, name)

    def and_(self, lhs, rhs, name=""):
        return self.binary("and", lhs, rhs, name)

    def or_(self, lhs, rhs, name=""):
        return self.binary("or", lhs, rhs, name)

    def xor(self, lhs, rhs, name=""):
        return self.binary("xor", lhs, rhs, name)

    def fadd(self, lhs, rhs, name=""):
        return self.binary("fadd", lhs, rhs, name)

    def fsub(self, lhs, rhs, name=""):
        return self.binary("fsub", lhs, rhs, name)

    def fmul(self, lhs, rhs, name=""):
        return self.binary("fmul", lhs, rhs, name)

    def fdiv(self, lhs, rhs, name=""):
        return self.binary("fdiv", lhs, rhs, name)

    def frem(self, lhs, rhs, name=""):
        return self.binary("frem", lhs, rhs, name)

    # -- comparisons -----------------------------------------------------------
    def icmp(self, predicate: str, lhs: Operand, rhs: Operand, name: str = "") -> Value:
        lhs, rhs = self._coerce_pair(lhs, rhs)
        return self._insert(ICmpInst(predicate, lhs, rhs), name)

    def fcmp(self, predicate: str, lhs: Operand, rhs: Operand, name: str = "") -> Value:
        lhs, rhs = self._coerce_pair(lhs, rhs)
        return self._insert(FCmpInst(predicate, lhs, rhs), name)

    # -- data movement -----------------------------------------------------------
    def select(self, cond: Value, tval: Operand, fval: Operand, name: str = "") -> Value:
        tval, fval = self._coerce_pair(tval, fval)
        return self._insert(SelectInst(cond, tval, fval), name)

    def phi(self, type_: Type, name: str = "") -> PhiInst:
        """Insert a phi at the start of the current block's phi group."""
        if self.block is None:
            raise ValueError("builder has no insertion block")
        inst = PhiInst(type_)
        inst.name = self.function.unique_name(name or "phi")
        self.block.insert(self.block.first_non_phi_index(), inst)
        return inst

    # -- casts -----------------------------------------------------------
    def cast(self, opcode: str, value: Value, to_type: Type, name: str = "") -> Value:
        if value.type is to_type and opcode in ("bitcast",):
            return value
        return self._insert(CastInst(opcode, value, to_type), name)

    def trunc(self, value, to_type, name=""):
        return self.cast("trunc", value, to_type, name)

    def zext(self, value, to_type, name=""):
        return self.cast("zext", value, to_type, name)

    def sext(self, value, to_type, name=""):
        return self.cast("sext", value, to_type, name)

    def sitofp(self, value, to_type, name=""):
        return self.cast("sitofp", value, to_type, name)

    def fptosi(self, value, to_type, name=""):
        return self.cast("fptosi", value, to_type, name)

    def fpext(self, value, to_type, name=""):
        return self.cast("fpext", value, to_type, name)

    def fptrunc(self, value, to_type, name=""):
        return self.cast("fptrunc", value, to_type, name)

    # -- memory -----------------------------------------------------------
    def load(self, ptr: Value, name: str = "") -> Value:
        return self._insert(LoadInst(ptr), name)

    def store(self, value: Operand, ptr: Value) -> Instruction:
        if not isinstance(value, Value):
            if not isinstance(ptr.type, PointerType):
                raise TypeError("store target must be a pointer")
            value = const(ptr.type.pointee, value)
        return self._insert(StoreInst(value, ptr), "")

    def gep(self, ptr: Value, index: Operand, name: str = "") -> Value:
        from .types import I64

        if not isinstance(index, Value):
            index = const(I64, index)
        return self._insert(GEPInst(ptr, index), name)

    def alloca(self, element_type: Type, count: int = 1, name: str = "") -> Value:
        return self._insert(AllocaInst(element_type, count), name)

    # -- calls -----------------------------------------------------------
    def call(self, intrinsic: str, args: Sequence[Value] = (),
             type_: Optional[Type] = None, name: str = "") -> Value:
        return self._insert(CallInst(intrinsic, list(args), type_), name)

    def tid_x(self, name: str = "tid") -> Value:
        return self.call("tid.x", name=name)

    def ctaid_x(self, name: str = "ctaid") -> Value:
        return self.call("ctaid.x", name=name)

    def ntid_x(self, name: str = "ntid") -> Value:
        return self.call("ntid.x", name=name)

    def syncthreads(self) -> Value:
        return self.call("syncthreads")

    # -- terminators -----------------------------------------------------------
    def br(self, target: BasicBlock) -> Instruction:
        return self._insert(BranchInst(target), "")

    def cond_br(self, cond: Value, true_target: BasicBlock,
                false_target: BasicBlock) -> Instruction:
        return self._insert(CondBranchInst(cond, true_target, false_target), "")

    def ret(self, value: Optional[Value] = None) -> Instruction:
        return self._insert(RetInst(value), "")

    def unreachable(self) -> Instruction:
        return self._insert(UnreachableInst(), "")
