"""Modules: a named set of functions and global arrays."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .function import Function
from .types import FunctionType, Type
from .values import GlobalVariable


class Module:
    """Container for the functions and globals of one compiled program."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}

    # -- functions -----------------------------------------------------------
    def add_function(self, name: str, ftype: FunctionType,
                     arg_names: Optional[List[str]] = None) -> Function:
        if name in self.functions:
            raise ValueError(f"duplicate function @{name}")
        func = Function(name, ftype, arg_names)
        func.parent = self
        self.functions[name] = func
        return func

    def adopt_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function @{func.name}")
        func.parent = self
        self.functions[func.name] = func
        return func

    def get_function(self, name: str) -> Function:
        func = self.functions.get(name)
        if func is None:
            raise KeyError(f"no function @{name} in module {self.name}")
        return func

    # -- globals -----------------------------------------------------------
    def add_global(self, name: str, element_type: Type, count: int,
                   initializer=None) -> GlobalVariable:
        if name in self.globals:
            raise ValueError(f"duplicate global @{name}")
        gv = GlobalVariable(element_type, count, name, initializer)
        self.globals[name] = gv
        return gv

    def get_global(self, name: str) -> GlobalVariable:
        gv = self.globals.get(name)
        if gv is None:
            raise KeyError(f"no global @{name} in module {self.name}")
        return gv

    # -- metrics ---------------------------------------------------------------
    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.functions.values())

    def code_size(self) -> int:
        """Proxy for binary size: summed cost-model size of all functions."""
        return sum(f.code_size() for f in self.functions.values())

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def __repr__(self) -> str:
        return f"<Module {self.name} [{len(self.functions)} functions]>"
