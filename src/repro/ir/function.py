"""Functions (GPU kernels and device helpers)."""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .block import BasicBlock
from .instructions import Instruction
from .types import FunctionType, Type
from .values import Argument, Value


class Function(Value):
    """A function: arguments plus an ordered list of basic blocks.

    Block order is significant only in that ``blocks[0]`` is the entry block;
    the printer and deterministic iteration rely on the stored order.
    """

    __slots__ = ("blocks", "args", "ftype", "parent", "_name_counts",
                 "attributes")

    def __init__(self, name: str, ftype: FunctionType,
                 arg_names: Optional[Sequence[str]] = None) -> None:
        super().__init__(ftype, name)
        self.ftype = ftype
        self.blocks: List[BasicBlock] = []
        self.parent = None
        self.attributes: Dict[str, object] = {}
        if arg_names is None:
            arg_names = [f"arg{i}" for i in range(len(ftype.params))]
        if len(arg_names) != len(ftype.params):
            raise ValueError("argument name count does not match signature")
        self.args: List[Argument] = []
        for i, (ptype, pname) in enumerate(zip(ftype.params, arg_names)):
            arg = Argument(ptype, pname, i)
            arg.parent = self
            self.args.append(arg)
        self._name_counts: Dict[str, int] = {}

    # -- blocks -----------------------------------------------------------
    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, name: str = "", after: Optional[BasicBlock] = None) -> BasicBlock:
        block = BasicBlock(self.unique_name(name or "bb"))
        block.parent = self
        if after is None:
            self.blocks.append(block)
        else:
            index = self._block_index(after)
            self.blocks.insert(index + 1, block)
        return block

    def adopt_block(self, block: BasicBlock,
                    after: Optional[BasicBlock] = None) -> BasicBlock:
        """Attach an existing (detached) block to this function."""
        block.parent = self
        block.name = self.unique_name(block.name or "bb")
        if after is None:
            self.blocks.append(block)
        else:
            index = self._block_index(after)
            self.blocks.insert(index + 1, block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        index = self._block_index(block)
        del self.blocks[index]
        block.parent = None

    def _block_index(self, block: BasicBlock) -> int:
        for i, existing in enumerate(self.blocks):
            if existing is block:
                return i
        raise ValueError(f"block {block.name} not in function {self.name}")

    # -- names -----------------------------------------------------------
    def unique_name(self, base: str) -> str:
        """Return ``base`` or ``base.N`` such that it is unused in this function."""
        count = self._name_counts.get(base)
        if count is None:
            self._name_counts[base] = 1
            return base
        while True:
            candidate = f"{base}.{count}"
            count += 1
            if candidate not in self._name_counts:
                self._name_counts[base] = count
                self._name_counts[candidate] = 1
                return candidate

    # -- iteration ----------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks)

    def code_size(self) -> int:
        """Cost-model size of the function (proxy for binary size)."""
        return sum(inst.cost for inst in self.instructions())

    def short_name(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        return (f"<Function @{self.name} [{len(self.blocks)} blocks, "
                f"{self.instruction_count()} insts]>")
